//! Sequential FFT reference implementations (the correctness oracles).

use crate::complex::Complex32;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics unless `data.len()` is a power of two (and nonzero).
pub fn fft_inplace(data: &mut [Complex32]) {
    transform(data, false);
}

/// In-place inverse FFT (including the `1/n` normalization).
///
/// # Panics
/// Panics unless `data.len()` is a power of two (and nonzero).
pub fn inverse_fft_inplace(data: &mut [Complex32]) {
    transform(data, true);
    let k = 1.0 / data.len() as f32;
    for z in data.iter_mut() {
        *z = z.scale(k);
    }
}

fn transform(data: &mut [Complex32], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    let log_n = n.trailing_zeros();

    // Bit-reversal permutation.
    for i in 0..n {
        let j = bit_reverse(i, log_n);
        if i < j {
            data.swap(i, j);
        }
    }

    // log2(n) butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut span = 1;
    while span < n {
        let theta = sign * std::f32::consts::PI / span as f32;
        for start in (0..n).step_by(span * 2) {
            for k in 0..span {
                let w = Complex32::cis(theta * k as f32);
                let a = data[start + k];
                let b = data[start + k + span] * w;
                data[start + k] = a + b;
                data[start + k + span] = a - b;
            }
        }
        span *= 2;
    }
}

/// Reverse the low `bits` bits of `i`.
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Naive `O(n^2)` DFT — slow, but independently correct; used to validate
/// the FFT.
pub fn dft_naive(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::ZERO;
            for (i, &x) in input.iter().enumerate() {
                let theta = -2.0 * std::f32::consts::PI * (k * i) as f32 / n as f32;
                acc += x * Complex32::cis(theta);
            }
            acc
        })
        .collect()
}

/// Maximum absolute componentwise difference, for tolerance checks.
pub fn max_error(a: &[Complex32], b: &[Complex32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.re - y.re).abs().max((x.im - y.im).abs()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::complex_signal;

    #[test]
    fn bit_reverse_small_cases() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b011, 3), 0b110);
        assert_eq!(bit_reverse(0b101, 3), 0b101);
        assert_eq!(bit_reverse(1, 1), 1);
        assert_eq!(bit_reverse(0, 0), 0);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex32::ZERO; 8];
        data[0] = Complex32::ONE;
        fft_inplace(&mut data);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-6);
            assert!(z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex32::ONE; 16];
        fft_inplace(&mut data);
        assert!((data[0].re - 16.0).abs() < 1e-4);
        for z in &data[1..] {
            assert!(z.abs() < 1e-4);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        for log_n in 1..=8 {
            let n = 1 << log_n;
            let input = complex_signal(n, 99);
            let expected = dft_naive(&input);
            let mut actual = input.clone();
            fft_inplace(&mut actual);
            let err = max_error(&actual, &expected);
            assert!(err < 1e-3 * n as f32, "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let input = complex_signal(256, 7);
        let mut data = input.clone();
        fft_inplace(&mut data);
        inverse_fft_inplace(&mut data);
        assert!(max_error(&data, &input) < 1e-4);
    }

    #[test]
    fn single_point_is_identity() {
        let mut data = vec![Complex32::new(3.0, -2.0)];
        fft_inplace(&mut data);
        assert_eq!(data[0], Complex32::new(3.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex32::ZERO; 12];
        fft_inplace(&mut data);
    }

    #[test]
    fn linearity_of_dft() {
        let a = complex_signal(32, 1);
        let b = complex_signal(32, 2);
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = dft_naive(&a);
        let fb = dft_naive(&b);
        let fsum = dft_naive(&sum);
        let combined: Vec<Complex32> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert!(max_error(&fsum, &combined) < 1e-3);
    }
}
