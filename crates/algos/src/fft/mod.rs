//! Fast Fourier Transform (paper Section 6.1).
//!
//! An `n`-point radix-2 FFT computes in `log2(n)` iterations; butterflies
//! within an iteration are independent, but an iteration cannot start until
//! the previous one finishes — the inter-block barrier the paper studies.
//!
//! * [`mod@reference`] — sequential iterative radix-2 FFT and an `O(n^2)`
//!   DFT oracle.
//! * [`kernel`] — [`GridFft`], the host-runtime grid kernel: one
//!   permutation round plus one round per butterfly stage.
//! * [`workload`] — [`FftWorkload`], the simulator cost model (448
//!   threads/block in the paper's runs).
//! * [`fft2d`] — a 2-D transform built from fused row/column passes in a
//!   single persistent kernel (extension).

pub mod fft2d;
pub mod kernel;
pub mod reference;
pub mod workload;

pub use fft2d::GridFft2d;
pub use kernel::GridFft;
pub use reference::{dft_naive, fft_inplace, inverse_fft_inplace};
pub use workload::FftWorkload;

/// Threads per block the paper uses for FFT (Section 7.2).
pub const PAPER_THREADS_PER_BLOCK: usize = 448;

/// Transform size used for the paper-scale experiments (Figures 13a/14a):
/// large enough that a butterfly stage dwarfs the barrier (`rho > 0.8`).
pub const PAPER_N: usize = 1 << 18;
