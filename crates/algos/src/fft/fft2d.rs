//! 2-D FFT as a grid kernel (extension of the Section 6.1 workload).
//!
//! A `rows x cols` 2-D transform factors into 1-D transforms of every row
//! followed by 1-D transforms of every column. On the grid runtime this is
//! a natural *round-fusion* showcase: with CPU synchronization each 1-D
//! stage of each pass is a separate kernel launch (`log2(cols) +
//! log2(rows)` launches plus permutes); with a device-side barrier the
//! whole 2-D transform is one persistent kernel.
//!
//! Round layout (all rounds barrier-separated):
//!
//! 1. one permutation round for the row pass,
//! 2. `log2(cols)` row butterfly rounds (blocks partition all rows'
//!    butterflies),
//! 3. one transpose-permutation round for the column pass,
//! 4. `log2(rows)` column butterfly rounds,
//! 5. one transpose-back round (+ normalization when inverse).

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::kernel::Direction;
use super::reference::bit_reverse;
use crate::complex::Complex32;

/// A `rows x cols` 2-D FFT structured as barrier-separated rounds.
pub struct GridFft2d {
    input_re: GlobalBuffer<f32>,
    input_im: GlobalBuffer<f32>,
    /// Working buffer A (row-major `rows x cols` during the row pass).
    a_re: GlobalBuffer<f32>,
    a_im: GlobalBuffer<f32>,
    /// Working buffer B (row-major `cols x rows` during the column pass).
    b_re: GlobalBuffer<f32>,
    b_im: GlobalBuffer<f32>,
    rows: usize,
    cols: usize,
    direction: Direction,
}

impl GridFft2d {
    /// Prepare a 2-D transform of row-major `input` (both dimensions must
    /// be nonzero powers of two).
    ///
    /// # Panics
    /// Panics on dimension mismatch or non-power-of-two dimensions.
    pub fn new(input: &[Complex32], rows: usize, cols: usize, direction: Direction) -> Self {
        assert!(
            rows.is_power_of_two() && cols.is_power_of_two(),
            "dimensions must be powers of two"
        );
        assert_eq!(input.len(), rows * cols, "input length must be rows * cols");
        let re: Vec<f32> = input.iter().map(|z| z.re).collect();
        let im: Vec<f32> = input.iter().map(|z| z.im).collect();
        let n = rows * cols;
        GridFft2d {
            input_re: GlobalBuffer::from_slice(&re),
            input_im: GlobalBuffer::from_slice(&im),
            a_re: GlobalBuffer::new(n),
            a_im: GlobalBuffer::new(n),
            b_re: GlobalBuffer::new(n),
            b_im: GlobalBuffer::new(n),
            rows,
            cols,
            direction,
        }
    }

    /// Matrix dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row-major result (valid after the kernel has run).
    pub fn output(&self) -> Vec<Complex32> {
        (0..self.rows * self.cols)
            .map(|i| Complex32::new(self.a_re.get(i), self.a_im.get(i)))
            .collect()
    }

    fn sign(&self) -> f32 {
        match self.direction {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    /// Butterfly stage over a buffer interpreted as `lines` independent
    /// transforms of length `len`, partitioned across blocks by flat
    /// butterfly index.
    #[allow(clippy::too_many_arguments)]
    fn stage(
        &self,
        ctx: &BlockCtx,
        re: &GlobalBuffer<f32>,
        im: &GlobalBuffer<f32>,
        lines: usize,
        len: usize,
        stage: usize,
    ) {
        let span = 1usize << stage;
        let theta_base = self.sign() * std::f32::consts::PI / span as f32;
        let per_line = len / 2;
        for t in ctx.chunk(lines * per_line) {
            let line = t / per_line;
            let b = t % per_line;
            let group = b / span;
            let k = b % span;
            let i = line * len + group * span * 2 + k;
            let j = i + span;
            let w = Complex32::cis(theta_base * k as f32);
            let x = Complex32::new(re.get(i), im.get(i));
            let y = Complex32::new(re.get(j), im.get(j)) * w;
            let (p, q) = (x + y, x - y);
            re.set(i, p.re);
            im.set(i, p.im);
            re.set(j, q.re);
            im.set(j, q.im);
        }
    }
}

impl RoundKernel for GridFft2d {
    fn rounds(&self) -> usize {
        let log_c = self.cols.trailing_zeros() as usize;
        let log_r = self.rows.trailing_zeros() as usize;
        // permute + row stages + transpose-permute + col stages +
        // transpose back (with normalization folded into the last round).
        1 + log_c + 1 + log_r + 1
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let (rows, cols) = (self.rows, self.cols);
        let log_c = cols.trailing_zeros() as usize;
        let log_r = rows.trailing_zeros() as usize;
        let n = rows * cols;
        if round == 0 {
            // Row-pass bit-reversal gather: A[r][c] = input[r][rev(c)].
            for i in ctx.chunk(n) {
                let (r, c) = (i / cols, i % cols);
                let src = r * cols + bit_reverse(c, log_c as u32);
                self.a_re.set(i, self.input_re.get(src));
                self.a_im.set(i, self.input_im.get(src));
            }
        } else if round <= log_c {
            self.stage(ctx, &self.a_re, &self.a_im, rows, cols, round - 1);
        } else if round == log_c + 1 {
            // Transpose + column bit-reversal gather:
            // B[c][r] = A[rev(r)][c]  (B is cols x rows, row-major).
            for i in ctx.chunk(n) {
                let (c, r) = (i / rows, i % rows);
                let src = bit_reverse(r, log_r as u32) * cols + c;
                self.b_re.set(i, self.a_re.get(src));
                self.b_im.set(i, self.a_im.get(src));
            }
        } else if round <= log_c + 1 + log_r {
            self.stage(ctx, &self.b_re, &self.b_im, cols, rows, round - log_c - 2);
        } else {
            // Transpose back into A (+ inverse normalization).
            let norm = match self.direction {
                Direction::Forward => 1.0,
                Direction::Inverse => 1.0 / n as f32,
            };
            for i in ctx.chunk(n) {
                let (r, c) = (i / cols, i % cols);
                let src = c * rows + r;
                self.a_re.set(i, self.b_re.get(src) * norm);
                self.a_im.set(i, self.b_im.get(src) * norm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::reference::{fft_inplace, max_error};
    use crate::seqgen::complex_signal;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run2d(
        input: &[Complex32],
        rows: usize,
        cols: usize,
        dir: Direction,
        n_blocks: usize,
        method: SyncMethod,
    ) -> Vec<Complex32> {
        let k = GridFft2d::new(input, rows, cols, dir);
        GridExecutor::new(GridConfig::new(n_blocks, 64), method)
            .run(&k)
            .unwrap();
        k.output()
    }

    /// Sequential 2-D reference built from the verified 1-D FFT.
    fn reference_2d(input: &[Complex32], rows: usize, cols: usize) -> Vec<Complex32> {
        let mut data = input.to_vec();
        for r in 0..rows {
            fft_inplace(&mut data[r * cols..(r + 1) * cols]);
        }
        let mut out = vec![Complex32::ZERO; rows * cols];
        for c in 0..cols {
            let mut col: Vec<Complex32> = (0..rows).map(|r| data[r * cols + c]).collect();
            fft_inplace(&mut col);
            for (r, v) in col.into_iter().enumerate() {
                out[r * cols + c] = v;
            }
        }
        out
    }

    #[test]
    fn matches_sequential_2d_reference() {
        for (rows, cols) in [(8usize, 8usize), (4, 16), (32, 8)] {
            let input = complex_signal(rows * cols, (rows * 1000 + cols) as u64);
            let expected = reference_2d(&input, rows, cols);
            for method in [SyncMethod::GpuLockFree, SyncMethod::CpuImplicit] {
                let got = run2d(&input, rows, cols, Direction::Forward, 5, method);
                let err = max_error(&got, &expected);
                assert!(
                    err < 1e-3 * (rows * cols) as f32,
                    "{rows}x{cols} {method}: {err}"
                );
            }
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let (rows, cols) = (8, 16);
        let mut input = vec![Complex32::ZERO; rows * cols];
        input[0] = Complex32::ONE;
        let out = run2d(
            &input,
            rows,
            cols,
            Direction::Forward,
            3,
            SyncMethod::GpuSimple,
        );
        for z in &out {
            assert!((z.re - 1.0).abs() < 1e-5 && z.im.abs() < 1e-5);
        }
    }

    #[test]
    fn round_trip_2d() {
        let (rows, cols) = (16, 16);
        let input = complex_signal(rows * cols, 99);
        let spec = run2d(
            &input,
            rows,
            cols,
            Direction::Forward,
            4,
            SyncMethod::GpuLockFree,
        );
        let back = run2d(
            &spec,
            rows,
            cols,
            Direction::Inverse,
            4,
            SyncMethod::GpuLockFree,
        );
        assert!(max_error(&back, &input) < 1e-3);
    }

    #[test]
    fn block_count_invariance() {
        let (rows, cols) = (8, 32);
        let input = complex_signal(rows * cols, 5);
        let a = run2d(
            &input,
            rows,
            cols,
            Direction::Forward,
            1,
            SyncMethod::GpuLockFree,
        );
        let b = run2d(
            &input,
            rows,
            cols,
            Direction::Forward,
            9,
            SyncMethod::GpuLockFree,
        );
        assert!(max_error(&a, &b) < 1e-6);
    }

    #[test]
    fn round_count() {
        let k = GridFft2d::new(&complex_signal(8 * 16, 0), 8, 16, Direction::Forward);
        assert_eq!(k.rounds(), 1 + 4 + 1 + 3 + 1);
        assert_eq!(k.dims(), (8, 16));
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn bad_dims_rejected() {
        let _ = GridFft2d::new(&complex_signal(12, 0), 3, 4, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn length_mismatch_rejected() {
        let _ = GridFft2d::new(&complex_signal(10, 0), 4, 4, Direction::Forward);
    }
}
