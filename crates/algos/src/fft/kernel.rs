//! The FFT as a grid kernel on the persistent-kernel host runtime.
//!
//! Round structure (each round ends at the inter-block barrier):
//!
//! 1. round 0 — bit-reversal permutation into the working buffer (each
//!    block writes its contiguous chunk, reading from anywhere);
//! 2. rounds `1..=log2(n)` — butterfly stages; the `n/2` butterflies of a
//!    stage are partitioned across blocks, and every array element is
//!    written by exactly one butterfly, so rounds are data-race free given
//!    a correct grid barrier;
//! 3. (inverse only) one final normalization round.
//!
//! This is precisely the structure whose barrier the paper replaces: with
//! CPU synchronization every stage is a separate kernel launch; with GPU
//! synchronization the whole transform is one persistent kernel.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::reference::bit_reverse;
use crate::complex::Complex32;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward DFT.
    Forward,
    /// Inverse DFT (with `1/n` normalization).
    Inverse,
}

/// An `n`-point radix-2 FFT structured as barrier-separated rounds.
pub struct GridFft {
    input_re: GlobalBuffer<f32>,
    input_im: GlobalBuffer<f32>,
    work_re: GlobalBuffer<f32>,
    work_im: GlobalBuffer<f32>,
    n: usize,
    log_n: u32,
    direction: Direction,
}

impl GridFft {
    /// Prepare a transform of `input` (length must be a nonzero power of
    /// two).
    ///
    /// # Panics
    /// Panics if the length is not a power of two.
    pub fn new(input: &[Complex32], direction: Direction) -> Self {
        let n = input.len();
        assert!(
            n.is_power_of_two(),
            "FFT length must be a power of two, got {n}"
        );
        let re: Vec<f32> = input.iter().map(|z| z.re).collect();
        let im: Vec<f32> = input.iter().map(|z| z.im).collect();
        GridFft {
            input_re: GlobalBuffer::from_slice(&re),
            input_im: GlobalBuffer::from_slice(&im),
            work_re: GlobalBuffer::new(n),
            work_im: GlobalBuffer::new(n),
            n,
            log_n: n.trailing_zeros(),
            direction,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the transform is empty (it never is; `new` requires a power
    /// of two).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Copy the result out of the working buffer (valid after the kernel
    /// has been run to completion).
    pub fn output(&self) -> Vec<Complex32> {
        (0..self.n)
            .map(|i| Complex32::new(self.work_re.get(i), self.work_im.get(i)))
            .collect()
    }

    #[inline]
    fn load(&self, i: usize) -> Complex32 {
        Complex32::new(self.work_re.get(i), self.work_im.get(i))
    }

    #[inline]
    fn store(&self, i: usize, z: Complex32) {
        self.work_re.set(i, z.re);
        self.work_im.set(i, z.im);
    }
}

impl RoundKernel for GridFft {
    fn rounds(&self) -> usize {
        // permute + log2(n) stages (+ normalize for the inverse).
        1 + self.log_n as usize + usize::from(self.direction == Direction::Inverse)
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let n = self.n;
        if round == 0 {
            // Bit-reversal gather into the working buffer.
            for i in ctx.chunk(n) {
                let src = bit_reverse(i, self.log_n);
                self.work_re.set(i, self.input_re.get(src));
                self.work_im.set(i, self.input_im.get(src));
            }
            return;
        }
        let stage = round - 1;
        if stage == self.log_n as usize {
            // Inverse-transform normalization round.
            let k = 1.0 / n as f32;
            for i in ctx.chunk(n) {
                self.store(i, self.load(i).scale(k));
            }
            return;
        }
        let span = 1usize << stage;
        let sign = match self.direction {
            Direction::Forward => -1.0f32,
            Direction::Inverse => 1.0f32,
        };
        let theta_base = sign * std::f32::consts::PI / span as f32;
        for t in ctx.chunk(n / 2) {
            let group = t / span;
            let k = t % span;
            let i = group * span * 2 + k;
            let j = i + span;
            let w = Complex32::cis(theta_base * k as f32);
            let a = self.load(i);
            let b = self.load(j) * w;
            self.store(i, a + b);
            self.store(j, a - b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::reference::{dft_naive, fft_inplace, max_error};
    use crate::seqgen::complex_signal;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run_grid_fft(
        input: &[Complex32],
        direction: Direction,
        n_blocks: usize,
        method: SyncMethod,
    ) -> Vec<Complex32> {
        let kernel = GridFft::new(input, direction);
        GridExecutor::new(GridConfig::new(n_blocks, 64), method)
            .run(&kernel)
            .unwrap();
        kernel.output()
    }

    #[test]
    fn matches_sequential_fft_all_gpu_methods() {
        let input = complex_signal(512, 42);
        let mut expected = input.clone();
        fft_inplace(&mut expected);
        for method in SyncMethod::GPU_METHODS {
            let out = run_grid_fft(&input, Direction::Forward, 6, method);
            assert!(max_error(&out, &expected) < 1e-4, "{method}");
        }
    }

    #[test]
    fn matches_sequential_fft_cpu_methods() {
        let input = complex_signal(256, 1);
        let mut expected = input.clone();
        fft_inplace(&mut expected);
        for method in [SyncMethod::CpuExplicit, SyncMethod::CpuImplicit] {
            let out = run_grid_fft(&input, Direction::Forward, 4, method);
            assert!(max_error(&out, &expected) < 1e-4, "{method}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        let input = complex_signal(128, 5);
        let expected = dft_naive(&input);
        let out = run_grid_fft(&input, Direction::Forward, 5, SyncMethod::GpuLockFree);
        assert!(max_error(&out, &expected) < 1e-2);
    }

    #[test]
    fn forward_then_inverse_round_trips() {
        let input = complex_signal(256, 9);
        let spectrum = run_grid_fft(&input, Direction::Forward, 4, SyncMethod::GpuLockFree);
        let back = run_grid_fft(&spectrum, Direction::Inverse, 4, SyncMethod::GpuLockFree);
        assert!(max_error(&back, &input) < 1e-4);
    }

    #[test]
    fn block_count_does_not_change_answer() {
        let input = complex_signal(1024, 3);
        let a = run_grid_fft(&input, Direction::Forward, 1, SyncMethod::GpuSimple);
        let b = run_grid_fft(&input, Direction::Forward, 13, SyncMethod::GpuSimple);
        assert!(max_error(&a, &b) < 1e-6);
    }

    #[test]
    fn rounds_structure() {
        let k = GridFft::new(&complex_signal(1024, 0), Direction::Forward);
        assert_eq!(k.rounds(), 11); // permute + 10 stages
        assert_eq!(k.len(), 1024);
        assert!(!k.is_empty());
        let k = GridFft::new(&complex_signal(1024, 0), Direction::Inverse);
        assert_eq!(k.rounds(), 12); // + normalize
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = GridFft::new(&complex_signal(100, 0), Direction::Forward);
    }
}
