//! Sequential Smith-Waterman with affine gaps — the correctness oracle,
//! including the trace-back phase the paper leaves on the CPU.

use super::scoring::{GapPenalties, Scoring};

/// Result of the matrix-filling phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwScore {
    /// The maximum local alignment score.
    pub score: i32,
    /// Matrix coordinates `(i, j)` (1-based) where the maximum occurs
    /// (first occurrence in row-major order).
    pub end: (usize, usize),
}

/// A full local alignment (trace-back output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score.
    pub score: i32,
    /// Aligned slice of `a` with `-` for gaps.
    pub aligned_a: String,
    /// Aligned slice of `b` with `-` for gaps.
    pub aligned_b: String,
    /// Start (1-based, inclusive) of the aligned region in `a`.
    pub start_a: usize,
    /// Start (1-based, inclusive) of the aligned region in `b`.
    pub start_b: usize,
}

/// Affine-gap Smith-Waterman matrix fill; returns the best score and its
/// position. `O(la * lb)` time, `O(lb)` memory.
pub fn smith_waterman(a: &[u8], b: &[u8], scoring: Scoring, gaps: GapPenalties) -> SwScore {
    let (la, lb) = (a.len(), b.len());
    let mut h_prev = vec![0i32; lb + 1];
    let mut h_cur = vec![0i32; lb + 1];
    let mut e_cur = vec![i32::MIN / 2; lb + 1]; // E(i, j): gap in a (horizontal)
    let mut f_prev = vec![i32::MIN / 2; lb + 1]; // F(i, j): gap in b (vertical)
    let mut best = SwScore {
        score: 0,
        end: (0, 0),
    };

    for i in 1..=la {
        e_cur[0] = i32::MIN / 2;
        for j in 1..=lb {
            let e = (h_cur[j - 1] - gaps.open).max(e_cur[j - 1] - gaps.extend);
            let f = (h_prev[j] - gaps.open).max(f_prev[j] - gaps.extend);
            let diag = h_prev[j - 1] + scoring.score(a[i - 1], b[j - 1]);
            let h = 0.max(diag).max(e).max(f);
            e_cur[j] = e;
            f_prev[j] = f; // reused as F(i, j) for the next row's read
            h_cur[j] = h;
            if h > best.score {
                best = SwScore {
                    score: h,
                    end: (i, j),
                };
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    best
}

/// Full Smith-Waterman with trace-back. `O(la * lb)` time **and** memory;
/// intended for verification and small examples.
pub fn smith_waterman_aligned(
    a: &[u8],
    b: &[u8],
    scoring: Scoring,
    gaps: GapPenalties,
) -> Alignment {
    let (la, lb) = (a.len(), b.len());
    let w = lb + 1;
    let neg = i32::MIN / 2;
    let mut h = vec![0i32; (la + 1) * w];
    let mut e = vec![neg; (la + 1) * w];
    let mut f = vec![neg; (la + 1) * w];
    let mut best = (0i32, 0usize, 0usize);

    for i in 1..=la {
        for j in 1..=lb {
            let idx = i * w + j;
            e[idx] = (h[idx - 1] - gaps.open).max(e[idx - 1] - gaps.extend);
            f[idx] = (h[idx - w] - gaps.open).max(f[idx - w] - gaps.extend);
            let diag = h[idx - w - 1] + scoring.score(a[i - 1], b[j - 1]);
            let v = 0.max(diag).max(e[idx]).max(f[idx]);
            h[idx] = v;
            if v > best.0 {
                best = (v, i, j);
            }
        }
    }

    // Trace back from the maximum to the first zero. The state records
    // which matrix the current cell's value was taken from, exactly
    // mirroring the recurrences above.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let (score, mut i, mut j) = best;
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    let mut state = State::H;
    loop {
        let idx = i * w + j;
        match state {
            State::H => {
                if i == 0 || j == 0 || h[idx] == 0 {
                    break;
                }
                let diag = h[idx - w - 1] + scoring.score(a[i - 1], b[j - 1]);
                if h[idx] == diag {
                    ra.push(a[i - 1]);
                    rb.push(b[j - 1]);
                    i -= 1;
                    j -= 1;
                } else if h[idx] == e[idx] {
                    state = State::E;
                } else {
                    debug_assert_eq!(h[idx], f[idx]);
                    state = State::F;
                }
            }
            State::E => {
                // Gap in `a`: consume one residue of `b`.
                ra.push(b'-');
                rb.push(b[j - 1]);
                let opened = h[idx - 1] - gaps.open == e[idx];
                j -= 1;
                if opened {
                    state = State::H;
                }
            }
            State::F => {
                // Gap in `b`: consume one residue of `a`.
                ra.push(a[i - 1]);
                rb.push(b'-');
                let opened = h[idx - w] - gaps.open == f[idx];
                i -= 1;
                if opened {
                    state = State::H;
                }
            }
        }
    }
    ra.reverse();
    rb.reverse();
    Alignment {
        score,
        aligned_a: String::from_utf8(ra).expect("residues are ASCII"),
        aligned_b: String::from_utf8(rb).expect("residues are ASCII"),
        start_a: i + 1,
        start_b: j + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna() -> (Scoring, GapPenalties) {
        (Scoring::dna(), GapPenalties::dna())
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let (s, g) = dna();
        let r = smith_waterman(b"ACGTACGT", b"ACGTACGT", s, g);
        assert_eq!(r.score, 16); // 8 matches x 2
        assert_eq!(r.end, (8, 8));
    }

    #[test]
    fn empty_sequences_score_zero() {
        let (s, g) = dna();
        assert_eq!(smith_waterman(b"", b"ACGT", s, g).score, 0);
        assert_eq!(smith_waterman(b"ACGT", b"", s, g).score, 0);
        assert_eq!(smith_waterman(b"", b"", s, g).score, 0);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        let (s, g) = dna();
        assert_eq!(smith_waterman(b"AAAA", b"TTTT", s, g).score, 0);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        let (s, g) = dna();
        // The motif ACGTACGT is embedded in noise on both sides.
        let a = b"TTTTTTACGTACGTTTTTTT";
        let b = b"GGGGACGTACGTGGGG";
        let r = smith_waterman(a, b, s, g);
        assert_eq!(r.score, 16);
    }

    #[test]
    fn single_gap_scores_affinely() {
        let (s, g) = dna();
        // a = ACGTT, b = ACG T T with deletion: aligning ACGTT vs ACGT
        // best: ACGT (4 matches = 8); opening a gap to catch the final T:
        // ACGTT vs ACG-T = 5 matches... b lacks one T.
        let r = smith_waterman(b"ACGTT", b"ACGT", s, g);
        assert_eq!(r.score, 8); // plain 4-match prefix beats gapping
                                // Longer context makes the gap worthwhile:
                                // a = ACGTTACGT, b = ACGTACGT (one T deleted).
        let r2 = smith_waterman(b"ACGTTACGT", b"ACGTACGT", s, g);
        // 8 matches x 2 - (open 4) = 12
        assert_eq!(r2.score, 12);
    }

    #[test]
    fn gap_extension_cheaper_than_reopen() {
        let (s, g) = dna();
        // Deleting two adjacent residues should cost open + extend (5),
        // not two opens (8).
        let r = smith_waterman(b"ACGTTAACGT", b"ACGTACGT", s, g);
        // 8 matches x 2 - (4 + 1) = 11
        assert_eq!(r.score, 11);
    }

    #[test]
    fn score_is_symmetric() {
        let (s, g) = dna();
        let a = b"ACGTGCTAGCTA";
        let b = b"GCTAGGTACG";
        assert_eq!(
            smith_waterman(a, b, s, g).score,
            smith_waterman(b, a, s, g).score
        );
    }

    #[test]
    fn traceback_reproduces_score_on_identity() {
        let (s, g) = dna();
        let al = smith_waterman_aligned(b"GGACGTACGTGG", b"TTACGTACGTTT", s, g);
        assert_eq!(al.score, 16);
        assert_eq!(al.aligned_a, "ACGTACGT");
        assert_eq!(al.aligned_b, "ACGTACGT");
        assert_eq!(al.start_a, 3);
        assert_eq!(al.start_b, 3);
    }

    #[test]
    fn traceback_emits_gap_symbols() {
        let (s, g) = dna();
        let al = smith_waterman_aligned(b"ACGTTACGT", b"ACGTACGT", s, g);
        assert_eq!(al.score, 12);
        assert!(
            al.aligned_b.contains('-'),
            "deletion should appear as a gap: {al:?}"
        );
        assert_eq!(al.aligned_a.len(), al.aligned_b.len());
    }

    #[test]
    fn traceback_and_fill_agree_on_score() {
        let (s, g) = dna();
        let a = crate::seqgen::dna_sequence(60, 21);
        let b = crate::seqgen::dna_sequence(50, 22);
        let fill = smith_waterman(&a, &b, s, g);
        let tb = smith_waterman_aligned(&a, &b, s, g);
        assert_eq!(fill.score, tb.score);
    }

    #[test]
    fn blosum62_protein_alignment() {
        let s = Scoring::Blosum62;
        let g = GapPenalties::protein();
        let r = smith_waterman(b"HEAGAWGHEE", b"PAWHEAE", s, g);
        assert!(r.score > 0);
        // Self-alignment dominates any cross-alignment.
        let self_score = smith_waterman(b"HEAGAWGHEE", b"HEAGAWGHEE", s, g).score;
        assert!(self_score > r.score);
    }
}
