//! Needleman-Wunsch global alignment (extension).
//!
//! The same wavefront structure as Smith-Waterman — one grid barrier per
//! anti-diagonal — with global-alignment boundary conditions: row 0 and
//! column 0 carry accumulating gap penalties, cell values may go negative
//! (no clamping to zero), and the answer is the single score at
//! `(la, lb)`. Included because the paper positions its barriers for
//! dynamic programming generally; NW exercises the identical
//! synchronization pattern with different numerics.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::diagonal_cells;
use super::scoring::{GapPenalties, Scoring};

/// Negative sentinel that cannot underflow when penalties are subtracted.
const NEG: i32 = i32::MIN / 2;

/// Sequential Needleman-Wunsch reference (affine gaps).
pub fn needleman_wunsch(a: &[u8], b: &[u8], scoring: Scoring, gaps: GapPenalties) -> i32 {
    let (la, lb) = (a.len(), b.len());
    let w = lb + 1;
    let mut h = vec![NEG; (la + 1) * w];
    let mut e = vec![NEG; (la + 1) * w];
    let mut f = vec![NEG; (la + 1) * w];
    h[0] = 0;
    for j in 1..=lb {
        e[j] = (-(gaps.open as i64) - (j as i64 - 1) * gaps.extend as i64) as i32;
        h[j] = e[j];
    }
    for i in 1..=la {
        f[i * w] = (-(gaps.open as i64) - (i as i64 - 1) * gaps.extend as i64) as i32;
        h[i * w] = f[i * w];
    }
    for i in 1..=la {
        for j in 1..=lb {
            let idx = i * w + j;
            e[idx] = (h[idx - 1] - gaps.open).max(e[idx - 1] - gaps.extend);
            f[idx] = (h[idx - w] - gaps.open).max(f[idx - w] - gaps.extend);
            let diag = h[idx - w - 1] + scoring.score(a[i - 1], b[j - 1]);
            h[idx] = diag.max(e[idx]).max(f[idx]);
        }
    }
    h[la * w + lb]
}

/// Needleman-Wunsch as a wavefront grid kernel.
pub struct GridNw {
    a: GlobalBuffer<u8>,
    b: GlobalBuffer<u8>,
    h: GlobalBuffer<i32>,
    e: GlobalBuffer<i32>,
    f: GlobalBuffer<i32>,
    la: usize,
    lb: usize,
    scoring: Scoring,
    gaps: GapPenalties,
}

impl GridNw {
    /// Prepare a global alignment of `a` vs `b`.
    ///
    /// # Panics
    /// Panics if either sequence is empty.
    pub fn new(a: &[u8], b: &[u8], scoring: Scoring, gaps: GapPenalties) -> Self {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "sequences must be non-empty"
        );
        let (la, lb) = (a.len(), b.len());
        let w = lb + 1;
        let h = GlobalBuffer::new((la + 1) * w);
        let e = GlobalBuffer::new((la + 1) * w);
        let f = GlobalBuffer::new((la + 1) * w);
        h.fill(NEG);
        e.fill(NEG);
        f.fill(NEG);
        // Boundary conditions (filled once on the host, like a cudaMemcpy
        // of the initialized matrix edges).
        h.set(0, 0);
        for j in 1..=lb {
            let v = -(gaps.open as i64) - (j as i64 - 1) * gaps.extend as i64;
            e.set(j, v as i32);
            h.set(j, v as i32);
        }
        for i in 1..=la {
            let v = -(gaps.open as i64) - (i as i64 - 1) * gaps.extend as i64;
            f.set(i * w, v as i32);
            h.set(i * w, v as i32);
        }
        GridNw {
            a: GlobalBuffer::from_slice(a),
            b: GlobalBuffer::from_slice(b),
            h,
            e,
            f,
            la,
            lb,
            scoring,
            gaps,
        }
    }

    /// The global alignment score (after the kernel has run).
    pub fn score(&self) -> i32 {
        self.h.get(self.la * (self.lb + 1) + self.lb)
    }
}

impl RoundKernel for GridNw {
    fn rounds(&self) -> usize {
        self.la + self.lb - 1
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let d = round + 2;
        let (i0, count) = diagonal_cells(self.la, self.lb, d);
        let w = self.lb + 1;
        for k in ctx.chunk(count) {
            let i = i0 + k;
            let j = d - i;
            let idx = i * w + j;
            let e =
                (self.h.get(idx - 1) - self.gaps.open).max(self.e.get(idx - 1) - self.gaps.extend);
            let f =
                (self.h.get(idx - w) - self.gaps.open).max(self.f.get(idx - w) - self.gaps.extend);
            let diag =
                self.h.get(idx - w - 1) + self.scoring.score(self.a.get(i - 1), self.b.get(j - 1));
            self.e.set(idx, e);
            self.f.set(idx, f);
            self.h.set(idx, diag.max(e).max(f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::{dna_sequence, related_dna};
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn dna() -> (Scoring, GapPenalties) {
        (Scoring::dna(), GapPenalties::dna())
    }

    fn run_grid(a: &[u8], b: &[u8], n_blocks: usize) -> i32 {
        let (s, g) = dna();
        let k = GridNw::new(a, b, s, g);
        GridExecutor::new(GridConfig::new(n_blocks, 64), SyncMethod::GpuLockFree)
            .run(&k)
            .unwrap();
        k.score()
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let (s, g) = dna();
        assert_eq!(needleman_wunsch(b"ACGTACGT", b"ACGTACGT", s, g), 16);
        assert_eq!(run_grid(b"ACGTACGT", b"ACGTACGT", 3), 16);
    }

    #[test]
    fn single_deletion_pays_gap_open() {
        let (s, g) = dna();
        // ACGTACGT vs ACGACGT: 7 matches x 2 - open(4) = 10.
        assert_eq!(needleman_wunsch(b"ACGTACGT", b"ACGACGT", s, g), 10);
        assert_eq!(run_grid(b"ACGTACGT", b"ACGACGT", 2), 10);
    }

    #[test]
    fn global_differs_from_local_on_noisy_flanks() {
        // Local alignment ignores bad flanks; global must pay for them.
        let (s, g) = dna();
        let a = b"TTTTACGTACGTTTTT";
        let b = b"GGGGACGTACGTGGGG";
        let local = super::super::reference::smith_waterman(a, b, s, g).score;
        let global = needleman_wunsch(a, b, s, g);
        assert!(
            global < local,
            "global {global} must be below local {local}"
        );
    }

    #[test]
    fn grid_matches_reference_on_random_inputs() {
        let (s, g) = dna();
        for seed in 0..5u64 {
            let a = dna_sequence(60 + seed as usize * 13, seed);
            let b = dna_sequence(80 - seed as usize * 7, seed + 100);
            let expected = needleman_wunsch(&a, &b, s, g);
            assert_eq!(run_grid(&a, &b, 5), expected, "seed {seed}");
        }
    }

    #[test]
    fn related_sequences_align_positively() {
        let (a, b) = related_dna(300, 0.05, 9);
        let score = run_grid(&a, &b, 6);
        assert!(score > 300, "related sequences should score high: {score}");
    }

    #[test]
    fn block_count_invariance() {
        let a = dna_sequence(90, 1);
        let b = dna_sequence(70, 2);
        assert_eq!(run_grid(&a, &b, 1), run_grid(&a, &b, 7));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let (s, g) = dna();
        let _ = GridNw::new(b"", b"A", s, g);
    }
}
