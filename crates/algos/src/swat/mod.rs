//! Smith-Waterman local sequence alignment (paper Section 6.2).
//!
//! The alignment matrix fills in a wavefront: every cell depends on its
//! north, west, and northwest neighbours, so cells on one anti-diagonal are
//! independent while consecutive anti-diagonals must be ordered — one grid
//! barrier per anti-diagonal, `La + Lb - 1` barriers total. The paper
//! accelerates only this matrix-filling phase (>99% of the runtime); the
//! trace-back is sequential and provided by the reference module.
//!
//! * [`scoring`] — substitution scoring (simple match/mismatch and
//!   BLOSUM62) and affine gap penalties (Section 6.2's open/extend scheme).
//! * [`mod@reference`] — sequential affine-gap fill and trace-back oracle.
//! * [`kernel`] — [`GridSwat`], the wavefront grid kernel (256
//!   threads/block in the paper's runs).
//! * [`workload`] — simulator cost model with the triangular diagonal-length
//!   profile (this is the paper's ~50%-sync application).

pub mod banded;
pub mod global;
pub mod kernel;
pub mod reference;
pub mod scoring;
pub mod workload;

pub use banded::GridSwatBanded;
pub use global::{needleman_wunsch, GridNw};
pub use kernel::GridSwat;
pub use reference::{smith_waterman, smith_waterman_aligned, Alignment};
pub use scoring::{GapPenalties, Scoring};
pub use workload::SwatWorkload;

/// Threads per block the paper uses for SWat (Section 7.2).
pub const PAPER_THREADS_PER_BLOCK: usize = 256;

/// Sequence length used for the paper-scale experiments (Figures 13b/14b):
/// an 8k x 8k alignment, where the average anti-diagonal costs about as
/// much as the CPU-implicit barrier (`rho ~ 0.5`, Table 1).
pub const PAPER_SEQ_LEN: usize = 8192;

/// Cells of anti-diagonal `d` (where cell `(i, j)`, `1 <= i <= la`,
/// `1 <= j <= lb`, lies on diagonal `d = i + j`): returns `(i_first, count)`
/// with cells `(i_first + k, d - i_first - k)` for `k < count`.
///
/// Valid `d` ranges over `2..=la + lb`.
pub fn diagonal_cells(la: usize, lb: usize, d: usize) -> (usize, usize) {
    debug_assert!((2..=la + lb).contains(&d));
    let i_first = d.saturating_sub(lb).max(1);
    let i_last = (d - 1).min(la);
    (i_first, i_last + 1 - i_first)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_cells_cover_matrix_exactly_once() {
        for (la, lb) in [(1, 1), (3, 5), (8, 8), (7, 2)] {
            let mut seen = vec![vec![false; lb + 1]; la + 1];
            for d in 2..=la + lb {
                let (i0, cnt) = diagonal_cells(la, lb, d);
                for k in 0..cnt {
                    let i = i0 + k;
                    let j = d - i;
                    assert!((1..=la).contains(&i), "i={i}");
                    assert!((1..=lb).contains(&j), "j={j}");
                    assert!(!seen[i][j], "cell ({i},{j}) twice");
                    seen[i][j] = true;
                }
            }
            for (i, row) in seen.iter().enumerate().skip(1) {
                for (j, &cell) in row.iter().enumerate().skip(1) {
                    assert!(cell, "cell ({i},{j}) missed");
                }
            }
        }
    }

    #[test]
    fn diagonal_lengths_are_triangular() {
        // For a square matrix the diagonal length ramps up to min(la, lb)
        // and back down.
        let (la, lb) = (4, 4);
        let lens: Vec<usize> = (2..=8).map(|d| diagonal_cells(la, lb, d).1).collect();
        assert_eq!(lens, vec![1, 2, 3, 4, 3, 2, 1]);
    }
}
