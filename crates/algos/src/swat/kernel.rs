//! Smith-Waterman as a wavefront grid kernel.
//!
//! One round per anti-diagonal: round `r` fills diagonal `d = r + 2`. The
//! cells of a diagonal are partitioned across blocks; each cell reads only
//! cells of diagonals `d-1` and `d-2` (filled in earlier rounds), so a
//! correct grid barrier makes the fill race-free. Each block tracks its own
//! running maximum in a per-block slot; the final score is the host-side
//! reduction of those slots — the same structure as the paper's CUDA
//! implementation, which keeps the trace-back on the host.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::scoring::{GapPenalties, Scoring};
use super::{diagonal_cells, reference::SwScore};

/// Negative "minus infinity" that cannot underflow when penalties are
/// subtracted.
const NEG: i32 = i32::MIN / 2;

/// The wavefront Smith-Waterman grid kernel.
pub struct GridSwat {
    a: GlobalBuffer<u8>,
    b: GlobalBuffer<u8>,
    h: GlobalBuffer<i32>,
    e: GlobalBuffer<i32>,
    f: GlobalBuffer<i32>,
    /// Per-block running maximum, packed as `(score << 32) | (!pos)` so
    /// that the numeric maximum is the best score with the *earliest*
    /// position — the same tie-break as the row-major reference scan.
    block_best: GlobalBuffer<i64>,
    la: usize,
    lb: usize,
    scoring: Scoring,
    gaps: GapPenalties,
}

impl GridSwat {
    /// Prepare an alignment of `a` vs `b`.
    ///
    /// # Panics
    /// Panics if either sequence is empty (a zero-length alignment has no
    /// wavefront).
    pub fn new(a: &[u8], b: &[u8], scoring: Scoring, gaps: GapPenalties, n_blocks: usize) -> Self {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "sequences must be non-empty"
        );
        let (la, lb) = (a.len(), b.len());
        let w = lb + 1;
        let h = GlobalBuffer::new((la + 1) * w);
        let e = GlobalBuffer::new((la + 1) * w);
        let f = GlobalBuffer::new((la + 1) * w);
        // Initialize E/F to -inf everywhere (row/col 0 of H stays 0).
        e.fill(NEG);
        f.fill(NEG);
        GridSwat {
            a: GlobalBuffer::from_slice(a),
            b: GlobalBuffer::from_slice(b),
            h,
            e,
            f,
            block_best: GlobalBuffer::new(n_blocks),
            la,
            lb,
            scoring,
            gaps,
        }
    }

    #[inline]
    fn w(&self) -> usize {
        self.lb + 1
    }

    /// Best score and its (1-based) end cell after the kernel has run.
    pub fn result(&self) -> SwScore {
        let mut best: i64 = 0;
        for k in 0..self.block_best.len() {
            best = best.max(self.block_best.get(k));
        }
        let score = (best >> 32) as i32;
        let pos = (!(best as u32)) as usize;
        let w = self.w();
        SwScore {
            score,
            end: if score > 0 {
                (pos / w, pos % w)
            } else {
                (0, 0)
            },
        }
    }

    /// Read the filled H matrix (row-major, `(la+1) x (lb+1)`), for tests.
    pub fn h_matrix(&self) -> Vec<i32> {
        self.h.to_vec()
    }

    /// Number of anti-diagonal rounds.
    pub fn num_diagonals(&self) -> usize {
        self.la + self.lb - 1
    }
}

impl RoundKernel for GridSwat {
    fn rounds(&self) -> usize {
        self.num_diagonals()
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let d = round + 2;
        let (i0, count) = diagonal_cells(self.la, self.lb, d);
        let w = self.w();
        let range = ctx.chunk(count);
        let mut best = self.block_best.get(ctx.block_id);
        for k in range {
            let i = i0 + k;
            let j = d - i;
            let idx = i * w + j;
            let e =
                (self.h.get(idx - 1) - self.gaps.open).max(self.e.get(idx - 1) - self.gaps.extend);
            let f =
                (self.h.get(idx - w) - self.gaps.open).max(self.f.get(idx - w) - self.gaps.extend);
            let diag =
                self.h.get(idx - w - 1) + self.scoring.score(self.a.get(i - 1), self.b.get(j - 1));
            let h = 0.max(diag).max(e).max(f);
            self.e.set(idx, e);
            self.f.set(idx, f);
            self.h.set(idx, h);
            let packed = ((h as i64) << 32) | i64::from(!(idx as u32));
            if packed > best {
                best = packed;
            }
        }
        self.block_best.set(ctx.block_id, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::{dna_sequence, related_dna};
    use crate::swat::reference::smith_waterman;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run_grid(a: &[u8], b: &[u8], n_blocks: usize, method: SyncMethod) -> SwScore {
        let kernel = GridSwat::new(a, b, Scoring::dna(), GapPenalties::dna(), n_blocks);
        GridExecutor::new(GridConfig::new(n_blocks, 64), method)
            .run(&kernel)
            .unwrap();
        kernel.result()
    }

    #[test]
    fn matches_reference_on_random_dna_all_methods() {
        let a = dna_sequence(120, 31);
        let b = dna_sequence(90, 32);
        let expected = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        for method in SyncMethod::GPU_METHODS {
            let got = run_grid(&a, &b, 5, method);
            assert_eq!(got.score, expected.score, "{method}");
        }
        for method in [SyncMethod::CpuExplicit, SyncMethod::CpuImplicit] {
            let got = run_grid(&a, &b, 5, method);
            assert_eq!(got.score, expected.score, "{method}");
        }
    }

    #[test]
    fn matches_reference_on_related_sequences() {
        let (a, b) = related_dna(200, 0.08, 77);
        let expected = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        let got = run_grid(&a, &b, 8, SyncMethod::GpuLockFree);
        assert_eq!(got.score, expected.score);
        // Related sequences align strongly.
        assert!(got.score > 150, "score {}", got.score);
    }

    #[test]
    fn end_position_matches_reference() {
        let a = dna_sequence(64, 5);
        let b = dna_sequence(64, 6);
        let expected = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        let got = run_grid(&a, &b, 4, SyncMethod::GpuSimple);
        assert_eq!(got.end, expected.end);
    }

    #[test]
    fn h_matrix_matches_reference_everywhere() {
        // Full-matrix cross-check against an independent row-by-row fill.
        let a = dna_sequence(40, 11);
        let b = dna_sequence(30, 12);
        let kernel = GridSwat::new(&a, &b, Scoring::dna(), GapPenalties::dna(), 3);
        GridExecutor::new(
            GridConfig::new(3, 32),
            SyncMethod::GpuTree(blocksync_core::TreeLevels::Two),
        )
        .run(&kernel)
        .unwrap();
        let h = kernel.h_matrix();
        // Reference fill.
        let (s, g) = (Scoring::dna(), GapPenalties::dna());
        let w = b.len() + 1;
        let mut h_ref = vec![0i32; (a.len() + 1) * w];
        let mut e_ref = vec![NEG; (a.len() + 1) * w];
        let mut f_ref = vec![NEG; (a.len() + 1) * w];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                let idx = i * w + j;
                e_ref[idx] = (h_ref[idx - 1] - g.open).max(e_ref[idx - 1] - g.extend);
                f_ref[idx] = (h_ref[idx - w] - g.open).max(f_ref[idx - w] - g.extend);
                let diag = h_ref[idx - w - 1] + s.score(a[i - 1], b[j - 1]);
                h_ref[idx] = 0.max(diag).max(e_ref[idx]).max(f_ref[idx]);
            }
        }
        assert_eq!(h, h_ref);
    }

    #[test]
    fn block_count_does_not_change_answer() {
        let (a, b) = related_dna(100, 0.15, 3);
        let r1 = run_grid(&a, &b, 1, SyncMethod::GpuLockFree);
        let r7 = run_grid(&a, &b, 7, SyncMethod::GpuLockFree);
        assert_eq!(r1.score, r7.score);
        assert_eq!(r1.end, r7.end);
    }

    #[test]
    fn asymmetric_lengths_work() {
        let a = dna_sequence(17, 1);
        let b = dna_sequence(301, 2);
        let expected = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        assert_eq!(
            run_grid(&a, &b, 6, SyncMethod::GpuLockFree).score,
            expected.score
        );
    }

    #[test]
    fn zero_score_when_nothing_aligns() {
        let got = run_grid(b"AAAA", b"TTTT", 2, SyncMethod::GpuSimple);
        assert_eq!(got.score, 0);
        assert_eq!(got.end, (0, 0));
    }

    #[test]
    fn round_count_is_diagonal_count() {
        let k = GridSwat::new(b"ACGT", b"ACG", Scoring::dna(), GapPenalties::dna(), 2);
        assert_eq!(k.rounds(), 6); // 4 + 3 - 1
        assert_eq!(k.num_diagonals(), 6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sequence_rejected() {
        let _ = GridSwat::new(b"", b"ACGT", Scoring::dna(), GapPenalties::dna(), 2);
    }
}
