//! Substitution scoring and affine gap penalties.
//!
//! Section 6.2: "the affine gap penalty is used in the alignment, which
//! consists of two penalties — the open-gap penalty `o` for starting a new
//! gap and the extension-gap penalty `e` for extending an existing gap.
//! Generally, an open-gap penalty is larger than an extension-gap penalty."

/// Affine gap penalties (stored as positive costs).
///
/// Opening a gap of length `k` costs `open + (k - 1) * extend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalties {
    /// Cost of the first residue of a gap (`o`).
    pub open: i32,
    /// Cost of each subsequent residue (`e`).
    pub extend: i32,
}

impl GapPenalties {
    /// A common DNA default: open 4, extend 1.
    pub const fn dna() -> Self {
        GapPenalties { open: 4, extend: 1 }
    }

    /// A common protein default (BLOSUM62 pairing): open 11, extend 1.
    pub const fn protein() -> Self {
        GapPenalties {
            open: 11,
            extend: 1,
        }
    }
}

/// Substitution scoring scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    /// Simple match/mismatch scoring (DNA-style).
    Simple {
        /// Score for `a == b`.
        r#match: i32,
        /// Score for `a != b` (typically negative).
        mismatch: i32,
    },
    /// The BLOSUM62 amino-acid substitution matrix.
    Blosum62,
}

impl Scoring {
    /// DNA default: +2 match, -1 mismatch.
    pub const fn dna() -> Self {
        Scoring::Simple {
            r#match: 2,
            mismatch: -1,
        }
    }

    /// Substitution score of residues `a` vs `b` (ASCII residue codes;
    /// case-insensitive). Unknown residues score as mismatches (Simple) or
    /// through BLOSUM62's `X` column.
    pub fn score(&self, a: u8, b: u8) -> i32 {
        match *self {
            Scoring::Simple { r#match, mismatch } => {
                if a.eq_ignore_ascii_case(&b) {
                    r#match
                } else {
                    mismatch
                }
            }
            Scoring::Blosum62 => {
                let ia = blosum62_index(a);
                let ib = blosum62_index(b);
                BLOSUM62[ia][ib] as i32
            }
        }
    }
}

/// BLOSUM62 residue order.
const BLOSUM62_RESIDUES: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

fn blosum62_index(residue: u8) -> usize {
    let r = residue.to_ascii_uppercase();
    BLOSUM62_RESIDUES.iter().position(|&c| c == r).unwrap_or(22) // 'X'
}

/// The standard BLOSUM62 matrix in [`BLOSUM62_RESIDUES`] order.
#[rustfmt::skip]
const BLOSUM62: [[i8; 24]; 24] = [
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4], // A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4], // R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4], // N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4], // D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4], // C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4], // Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4], // G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4], // H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4], // I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4], // L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4], // K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4], // M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4], // F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4], // P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4], // S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4], // T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4], // W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4], // Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4], // V
    [ -2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4], // B
    [ -1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // Z
    [  0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4], // X
    [ -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1], // *
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_scoring() {
        let s = Scoring::dna();
        assert_eq!(s.score(b'A', b'A'), 2);
        assert_eq!(s.score(b'A', b'a'), 2, "case-insensitive");
        assert_eq!(s.score(b'A', b'G'), -1);
    }

    #[test]
    fn blosum62_is_symmetric() {
        for &a in BLOSUM62_RESIDUES {
            for &b in BLOSUM62_RESIDUES {
                assert_eq!(
                    Scoring::Blosum62.score(a, b),
                    Scoring::Blosum62.score(b, a),
                    "{}/{}",
                    a as char,
                    b as char
                );
            }
        }
    }

    #[test]
    fn blosum62_known_entries() {
        let s = Scoring::Blosum62;
        assert_eq!(s.score(b'W', b'W'), 11);
        assert_eq!(s.score(b'A', b'A'), 4);
        assert_eq!(s.score(b'C', b'C'), 9);
        assert_eq!(s.score(b'A', b'R'), -1);
        assert_eq!(s.score(b'W', b'C'), -2);
        assert_eq!(s.score(b'l', b'i'), 2, "case-insensitive lookup");
    }

    #[test]
    fn unknown_residues_hit_x_column() {
        assert_eq!(
            Scoring::Blosum62.score(b'?', b'A'),
            Scoring::Blosum62.score(b'X', b'A')
        );
    }

    #[test]
    fn blosum_diagonal_dominates_row() {
        // Self-substitution is the max of each row for standard BLOSUM62
        // (true for all residues except B/Z/X ambiguity codes).
        for (idx, &a) in BLOSUM62_RESIDUES.iter().enumerate().take(20) {
            let diag = BLOSUM62[idx][idx];
            for (jdx, _) in BLOSUM62_RESIDUES.iter().enumerate() {
                if idx != jdx {
                    assert!(BLOSUM62[idx][jdx] < diag, "{} row", a as char);
                }
            }
        }
    }

    #[test]
    fn gap_presets() {
        let g = GapPenalties::dna();
        assert!(
            g.open > g.extend,
            "open-gap penalty is larger (Section 6.2)"
        );
        let p = GapPenalties::protein();
        assert!(p.open > p.extend);
    }
}
