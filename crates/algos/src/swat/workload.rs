//! Simulator cost model for the Smith-Waterman wavefront kernel.

use blocksync_device::{GpuSpec, SimDuration};
use blocksync_sim::Workload;

use super::diagonal_cells;
use crate::cost::CostModel;

/// Per-round compute times of a `la x lb` wavefront fill on `n_blocks`
/// blocks.
///
/// Rounds follow the anti-diagonals, so per-round work is triangular: it
/// ramps from one cell up to `min(la, lb)` cells and back down. This is the
/// paper's ~50%-synchronization application: with thousands of short rounds
/// the barrier cost rivals the compute cost, which is why SWat gains 24%
/// from the lock-free barrier (Figure 13b).
#[derive(Debug, Clone)]
pub struct SwatWorkload {
    la: usize,
    lb: usize,
    n_blocks: usize,
    cell: CostModel,
}

impl SwatWorkload {
    /// Workload for aligning sequences of lengths `la` and `lb`.
    ///
    /// # Panics
    /// Panics if either length is zero or `n_blocks == 0`.
    pub fn new(spec: &GpuSpec, la: usize, lb: usize, n_blocks: usize) -> Self {
        assert!(la > 0 && lb > 0, "sequences must be non-empty");
        assert!(n_blocks > 0);
        SwatWorkload {
            la,
            lb,
            n_blocks,
            cell: CostModel::swat(spec),
        }
    }

    fn share(&self, bid: usize, total: usize) -> usize {
        let per = total / self.n_blocks;
        let rem = total % self.n_blocks;
        per + usize::from(bid < rem)
    }
}

impl Workload for SwatWorkload {
    fn rounds(&self) -> usize {
        self.la + self.lb - 1
    }

    fn compute(&self, bid: usize, round: usize) -> SimDuration {
        let (_, count) = diagonal_cells(self.la, self.lb, round + 2);
        self.cell.round_time(self.share(bid, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(la: usize, lb: usize, blocks: usize) -> SwatWorkload {
        SwatWorkload::new(&GpuSpec::gtx280(), la, lb, blocks)
    }

    #[test]
    fn round_count_is_diagonal_count() {
        assert_eq!(wl(1024, 1024, 30).rounds(), 2047);
        assert_eq!(wl(5, 3, 2).rounds(), 7);
    }

    #[test]
    fn work_is_triangular() {
        let w = wl(100, 100, 1);
        let first = w.compute(0, 0);
        let middle = w.compute(0, 99); // longest diagonal
        let last = w.compute(0, 198);
        assert!(middle > first);
        assert!(middle > last);
        assert_eq!(first, last);
    }

    #[test]
    fn swat_is_low_rho_at_paper_scale() {
        // At paper scale the longest diagonal over 30 blocks must cost
        // the same order as the ~6 us CPU-implicit barrier — that is what
        // makes sync ~50% of SWat's runtime (Table 1).
        let n = crate::swat::PAPER_SEQ_LEN;
        let w = wl(n, n, 30);
        let mid = w.compute(0, n - 1).as_nanos();
        assert!(
            (3_000..30_000).contains(&mid),
            "longest diagonal {mid}ns out of plausible range"
        );
    }

    #[test]
    fn idle_blocks_still_pay_base_cost() {
        // Early diagonals have fewer cells than blocks; the blocks without
        // cells still execute the round.
        let w = wl(50, 50, 8);
        let t = w.compute(7, 0); // 1 cell total, block 7 idle
        assert!(t.as_nanos() > 0);
    }
}
