//! Banded Smith-Waterman (extension).
//!
//! When the two sequences are known to be similar, restricting the fill to
//! a diagonal band `|i - j| <= bandwidth` reduces work from `la * lb` to
//! `~(la + lb) * bandwidth` cells while returning the same score whenever
//! the optimal alignment stays inside the band — the standard
//! bioinformatics optimization. The wavefront/barrier structure is
//! unchanged (one grid barrier per anti-diagonal); only the per-diagonal
//! cell range narrows, which *shrinks* `rho` further and makes fast
//! barriers even more valuable — the banded kernel is the extreme version
//! of the paper's SWat argument.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::reference::SwScore;
use super::scoring::{GapPenalties, Scoring};

const NEG: i32 = i32::MIN / 2;

/// Cells of anti-diagonal `d` intersected with the band
/// `|i - j| <= bandwidth`: returns `(i_first, count)`.
pub fn banded_diagonal_cells(la: usize, lb: usize, bandwidth: usize, d: usize) -> (usize, usize) {
    debug_assert!((2..=la + lb).contains(&d));
    // Unbanded limits...
    let mut i_first = d.saturating_sub(lb).max(1);
    let mut i_last = (d - 1).min(la);
    // ...clipped by |i - (d - i)| <= w  <=>  (d - w)/2 <= i <= (d + w)/2.
    let lo = d.saturating_sub(bandwidth).div_ceil(2);
    let hi = (d + bandwidth) / 2;
    i_first = i_first.max(lo);
    i_last = i_last.min(hi);
    if i_first > i_last {
        (i_first, 0)
    } else {
        (i_first, i_last + 1 - i_first)
    }
}

/// Banded Smith-Waterman as a wavefront grid kernel.
///
/// Out-of-band neighbours read as "minus infinity"/zero-H boundary values,
/// matching the standard banded recurrence.
pub struct GridSwatBanded {
    a: GlobalBuffer<u8>,
    b: GlobalBuffer<u8>,
    h: GlobalBuffer<i32>,
    e: GlobalBuffer<i32>,
    f: GlobalBuffer<i32>,
    block_best: GlobalBuffer<i64>,
    la: usize,
    lb: usize,
    bandwidth: usize,
    scoring: Scoring,
    gaps: GapPenalties,
}

impl GridSwatBanded {
    /// Prepare a banded alignment.
    ///
    /// # Panics
    /// Panics if either sequence is empty or `bandwidth == 0`.
    pub fn new(
        a: &[u8],
        b: &[u8],
        bandwidth: usize,
        scoring: Scoring,
        gaps: GapPenalties,
        n_blocks: usize,
    ) -> Self {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "sequences must be non-empty"
        );
        assert!(bandwidth > 0, "bandwidth must be positive");
        let (la, lb) = (a.len(), b.len());
        let w = lb + 1;
        let h = GlobalBuffer::new((la + 1) * w);
        let e = GlobalBuffer::new((la + 1) * w);
        let f = GlobalBuffer::new((la + 1) * w);
        e.fill(NEG);
        f.fill(NEG);
        GridSwatBanded {
            a: GlobalBuffer::from_slice(a),
            b: GlobalBuffer::from_slice(b),
            h,
            e,
            f,
            block_best: GlobalBuffer::new(n_blocks),
            la,
            lb,
            bandwidth,
            scoring,
            gaps,
        }
    }

    /// Best in-band score and its end cell.
    pub fn result(&self) -> SwScore {
        let mut best: i64 = 0;
        for k in 0..self.block_best.len() {
            best = best.max(self.block_best.get(k));
        }
        let score = (best >> 32) as i32;
        let pos = (!(best as u32)) as usize;
        let w = self.lb + 1;
        SwScore {
            score,
            end: if score > 0 {
                (pos / w, pos % w)
            } else {
                (0, 0)
            },
        }
    }

    /// Total in-band cells (for cost accounting).
    pub fn band_cells(&self) -> usize {
        (2..=self.la + self.lb)
            .map(|d| banded_diagonal_cells(self.la, self.lb, self.bandwidth, d).1)
            .sum()
    }
}

impl RoundKernel for GridSwatBanded {
    fn rounds(&self) -> usize {
        self.la + self.lb - 1
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let d = round + 2;
        let (i0, count) = banded_diagonal_cells(self.la, self.lb, self.bandwidth, d);
        if count == 0 {
            return;
        }
        let w = self.lb + 1;
        let mut best = self.block_best.get(ctx.block_id);
        for k in ctx.chunk(count) {
            let i = i0 + k;
            let j = d - i;
            let idx = i * w + j;
            // Out-of-band H cells were never written and hold 0 — which is
            // exactly the local-alignment boundary value; out-of-band E/F
            // hold NEG from initialization.
            let e =
                (self.h.get(idx - 1) - self.gaps.open).max(self.e.get(idx - 1) - self.gaps.extend);
            let f =
                (self.h.get(idx - w) - self.gaps.open).max(self.f.get(idx - w) - self.gaps.extend);
            let diag =
                self.h.get(idx - w - 1) + self.scoring.score(self.a.get(i - 1), self.b.get(j - 1));
            let h = 0.max(diag).max(e).max(f);
            self.e.set(idx, e);
            self.f.set(idx, f);
            self.h.set(idx, h);
            let packed = ((h as i64) << 32) | i64::from(!(idx as u32));
            if packed > best {
                best = packed;
            }
        }
        self.block_best.set(ctx.block_id, best);
    }
}

/// Simulator cost model for the banded kernel: the SWat per-cell cost over
/// the band-clipped diagonal lengths.
#[derive(Debug, Clone)]
pub struct BandedSwatWorkload {
    la: usize,
    lb: usize,
    bandwidth: usize,
    n_blocks: usize,
    cell: crate::cost::CostModel,
}

impl BandedSwatWorkload {
    /// Workload for a banded `la x lb` fill.
    ///
    /// # Panics
    /// Panics on empty dimensions, zero band, or zero blocks.
    pub fn new(
        spec: &blocksync_device::GpuSpec,
        la: usize,
        lb: usize,
        bandwidth: usize,
        n_blocks: usize,
    ) -> Self {
        assert!(la > 0 && lb > 0 && bandwidth > 0 && n_blocks > 0);
        BandedSwatWorkload {
            la,
            lb,
            bandwidth,
            n_blocks,
            cell: crate::cost::CostModel::swat(spec),
        }
    }
}

impl blocksync_sim::Workload for BandedSwatWorkload {
    fn rounds(&self) -> usize {
        self.la + self.lb - 1
    }

    fn compute(&self, bid: usize, round: usize) -> blocksync_device::SimDuration {
        let (_, count) = banded_diagonal_cells(self.la, self.lb, self.bandwidth, round + 2);
        let per = count / self.n_blocks;
        let rem = count % self.n_blocks;
        self.cell.round_time(per + usize::from(bid < rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::{dna_sequence, related_dna};
    use crate::swat::reference::smith_waterman;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run(a: &[u8], b: &[u8], bw: usize, n_blocks: usize) -> SwScore {
        let k = GridSwatBanded::new(a, b, bw, Scoring::dna(), GapPenalties::dna(), n_blocks);
        GridExecutor::new(GridConfig::new(n_blocks, 64), SyncMethod::GpuLockFree)
            .run(&k)
            .unwrap();
        k.result()
    }

    #[test]
    fn band_cells_cover_band_exactly() {
        let (la, lb, bw) = (10usize, 12usize, 3usize);
        let mut cells = std::collections::HashSet::new();
        for d in 2..=la + lb {
            let (i0, cnt) = banded_diagonal_cells(la, lb, bw, d);
            for k in 0..cnt {
                let i = i0 + k;
                let j = d - i;
                assert!((1..=la).contains(&i) && (1..=lb).contains(&j));
                assert!(i.abs_diff(j) <= bw, "({i},{j}) outside band");
                assert!(cells.insert((i, j)), "({i},{j}) visited twice");
            }
        }
        // Every in-band cell visited.
        for i in 1..=la {
            for j in 1..=lb {
                if i.abs_diff(j) <= bw {
                    assert!(cells.contains(&(i, j)), "({i},{j}) missed");
                }
            }
        }
    }

    #[test]
    fn wide_band_equals_full_smith_waterman() {
        let a = dna_sequence(80, 41);
        let b = dna_sequence(70, 42);
        let full = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        // Band covering the whole matrix.
        let banded = run(&a, &b, 200, 4);
        assert_eq!(banded.score, full.score);
        assert_eq!(banded.end, full.end);
    }

    #[test]
    fn related_sequences_fit_in_narrow_band() {
        // Point mutations only: the optimal alignment is the main diagonal,
        // well inside any band.
        let (a, b) = related_dna(300, 0.05, 43);
        let full = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        let banded = run(&a, &b, 8, 5);
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn band_reduces_work() {
        let a = dna_sequence(200, 1);
        let b = dna_sequence(200, 2);
        let k = GridSwatBanded::new(&a, &b, 10, Scoring::dna(), GapPenalties::dna(), 4);
        let full_cells = 200 * 200;
        assert!(
            k.band_cells() < full_cells / 4,
            "band {} cells",
            k.band_cells()
        );
    }

    #[test]
    fn narrow_band_can_only_lower_the_score() {
        let a = dna_sequence(120, 7);
        let b = dna_sequence(120, 8);
        let full = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
        let banded = run(&a, &b, 2, 3);
        assert!(banded.score <= full.score);
    }

    #[test]
    fn block_count_invariance() {
        let (a, b) = related_dna(150, 0.1, 9);
        assert_eq!(run(&a, &b, 6, 1).score, run(&a, &b, 6, 7).score);
    }

    #[test]
    fn banded_workload_is_cheaper_and_lower_rho() {
        use blocksync_core::SyncMethod;
        use blocksync_device::GpuSpec;
        use blocksync_sim::{simulate, SimConfig, Workload};
        let spec = GpuSpec::gtx280();
        let full = crate::swat::SwatWorkload::new(&spec, 2048, 2048, 30);
        let banded = BandedSwatWorkload::new(&spec, 2048, 2048, 64, 30);
        assert_eq!(full.rounds(), banded.rounds());
        let rf = simulate(&SimConfig::new(30, 256, SyncMethod::CpuImplicit), &full);
        let rb = simulate(&SimConfig::new(30, 256, SyncMethod::CpuImplicit), &banded);
        // Banding cuts compute but not the per-round barrier => lower rho.
        assert!(rb.total < rf.total);
        assert!(rb.sync_fraction() > rf.sync_fraction());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = GridSwatBanded::new(b"A", b"A", 0, Scoring::dna(), GapPenalties::dna(), 1);
    }
}
