//! Simulator cost model for the bitonic sort kernel.

use blocksync_device::{GpuSpec, SimDuration};
use blocksync_sim::Workload;

use super::reference::network_schedule;
use crate::cost::CostModel;

/// Per-round compute times of sorting `n` keys on `n_blocks` blocks.
///
/// Every network step processes exactly `n/2` pairs, so per-round work is
/// uniform, small, and the step count is `log2(n) * (log2(n)+1) / 2` —
/// many short rounds. This is the paper's highest-synchronization
/// application (59.6% of time in barriers under CPU implicit sync,
/// Table 1), and the one that gains the most (39%) from the lock-free
/// barrier.
#[derive(Debug, Clone)]
pub struct BitonicWorkload {
    n: usize,
    n_blocks: usize,
    rounds: usize,
    cmp: CostModel,
}

impl BitonicWorkload {
    /// Workload for sorting `n = 2^k` keys.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two and `n_blocks > 0`.
    pub fn new(spec: &GpuSpec, n: usize, n_blocks: usize) -> Self {
        assert!(n_blocks > 0);
        let rounds = network_schedule(n).len(); // validates n
        BitonicWorkload {
            n,
            n_blocks,
            rounds,
            cmp: CostModel::bitonic(spec),
        }
    }

    fn share(&self, bid: usize) -> usize {
        let total = self.n / 2;
        let per = total / self.n_blocks;
        let rem = total % self.n_blocks;
        per + usize::from(bid < rem)
    }
}

impl Workload for BitonicWorkload {
    fn rounds(&self) -> usize {
        self.rounds
    }

    fn compute(&self, bid: usize, _round: usize) -> SimDuration {
        self.cmp.round_time(self.share(bid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_count_is_triangular() {
        let w = BitonicWorkload::new(&GpuSpec::gtx280(), 1 << 18, 30);
        assert_eq!(w.rounds(), 171); // 18 * 19 / 2
    }

    #[test]
    fn uniform_rounds() {
        let w = BitonicWorkload::new(&GpuSpec::gtx280(), 1 << 12, 8);
        assert_eq!(w.compute(0, 0), w.compute(0, 50));
    }

    #[test]
    fn bitonic_is_lowest_rho_at_paper_scale() {
        // A paper-scale step over 30 blocks must cost *less* than the
        // ~6 us CPU-implicit barrier (Table 1: ~60% sync).
        let w = BitonicWorkload::new(&GpuSpec::gtx280(), crate::bitonic::PAPER_N, 30);
        let t = w.compute(0, 0).as_nanos();
        assert!((1_500..6_500).contains(&t), "step time {t}ns");
    }
}
