//! Batched bitonic sort (extension): sort many independent segments in one
//! persistent kernel.
//!
//! A common service shape — `batch` arrays of `seg_len = 2^k` keys each —
//! sorted by running the network schedule once, applied to every segment
//! simultaneously. Barrier count stays `O(log^2 seg_len)` regardless of
//! the batch size, so the amortized synchronization cost per array drops
//! with the batch: exactly the fixed-cost argument the paper makes for
//! replacing per-step kernel launches.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::reference::{network_schedule, NetworkStep};

/// Bitonic sort of `batch` segments of `seg_len` keys each.
pub struct GridBitonicBatched {
    data: GlobalBuffer<u32>,
    schedule: Vec<NetworkStep>,
    seg_len: usize,
    batch: usize,
}

impl GridBitonicBatched {
    /// Prepare to sort `keys` as `batch` consecutive segments of equal
    /// power-of-two length.
    ///
    /// # Panics
    /// Panics if `batch == 0`, `keys.len()` is not `batch * 2^k`, or the
    /// segment length is not a power of two.
    pub fn new(keys: &[u32], batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert!(
            !keys.is_empty() && keys.len().is_multiple_of(batch),
            "keys must divide evenly into {batch} segments"
        );
        let seg_len = keys.len() / batch;
        let schedule = network_schedule(seg_len); // validates power of two
        GridBitonicBatched {
            data: GlobalBuffer::from_slice(keys),
            schedule,
            seg_len,
            batch,
        }
    }

    /// All segments, each sorted (after execution).
    pub fn output(&self) -> Vec<u32> {
        self.data.to_vec()
    }

    /// One segment's sorted keys.
    ///
    /// # Panics
    /// Panics if `segment >= batch`.
    pub fn segment(&self, segment: usize) -> Vec<u32> {
        assert!(segment < self.batch);
        self.data.read_range(segment * self.seg_len, self.seg_len)
    }

    /// `(batch, seg_len)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.batch, self.seg_len)
    }
}

impl RoundKernel for GridBitonicBatched {
    fn rounds(&self) -> usize {
        self.schedule.len()
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let NetworkStep { k, j } = self.schedule[round];
        let total = self.seg_len * self.batch;
        for g in ctx.chunk(total) {
            let seg_base = g - (g % self.seg_len);
            let i = g % self.seg_len;
            let partner = i ^ j;
            if partner > i {
                let ascending = (i & k) == 0;
                let (gi, gp) = (seg_base + i, seg_base + partner);
                let a = self.data.get(gi);
                let b = self.data.get(gp);
                if (a > b) == ascending {
                    self.data.set(gi, b);
                    self.data.set(gp, a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::random_keys;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run(keys: &[u32], batch: usize, n_blocks: usize) -> GridBitonicBatched {
        let k = GridBitonicBatched::new(keys, batch);
        GridExecutor::new(GridConfig::new(n_blocks, 64), SyncMethod::GpuLockFree)
            .run(&k)
            .unwrap();
        k
    }

    #[test]
    fn every_segment_sorted_independently() {
        let batch = 7;
        let seg = 256;
        let keys = random_keys(batch * seg, 60);
        let k = run(&keys, batch, 5);
        for s in 0..batch {
            let got = k.segment(s);
            let mut expected = keys[s * seg..(s + 1) * seg].to_vec();
            expected.sort_unstable();
            assert_eq!(got, expected, "segment {s}");
        }
    }

    #[test]
    fn barrier_rounds_independent_of_batch() {
        let a = GridBitonicBatched::new(&random_keys(256, 0), 1);
        let b = GridBitonicBatched::new(&random_keys(256 * 16, 0), 16);
        assert_eq!(a.rounds(), b.rounds(), "same segment length, same rounds");
        assert_eq!(b.shape(), (16, 256));
    }

    #[test]
    fn single_segment_matches_plain_kernel() {
        let keys = random_keys(1024, 61);
        let batched = run(&keys, 1, 4).output();
        let mut expected = keys;
        expected.sort_unstable();
        assert_eq!(batched, expected);
    }

    #[test]
    fn tiny_segments() {
        let keys = vec![4u32, 3, 2, 1, 8, 7, 6, 5];
        let k = run(&keys, 4, 2); // 4 segments of length 2
        assert_eq!(k.output(), vec![3, 4, 1, 2, 7, 8, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = GridBitonicBatched::new(&[1, 2], 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_segment_rejected() {
        let _ = GridBitonicBatched::new(&[1, 2, 3, 4, 5, 6], 2); // segments of 3
    }
}
