//! Bitonic sort (paper Section 6.3).
//!
//! Batcher's sorting network sorts `n = 2^k` keys in a fixed schedule of
//! `k * (k + 1) / 2` compare-exchange steps. Pairs within a step are
//! independent; consecutive steps are ordered — one grid barrier per step.
//! The paper highlights that without inter-block synchronization the CUDA
//! SDK's bitonic sort is limited to a single block (≤ 512 keys); with a
//! grid barrier the network spans the whole device.
//!
//! * [`mod@reference`] — sequential bitonic network (and schedule helpers).
//! * [`kernel`] — [`GridBitonic`], one round per network step (512
//!   threads/block in the paper's runs).
//! * [`workload`] — simulator cost model (the paper's highest-sync
//!   application: ~60% of time in barriers under CPU implicit sync).

pub mod batched;
pub mod kernel;
pub mod keyvalue;
pub mod reference;
pub mod workload;

pub use batched::GridBitonicBatched;
pub use kernel::GridBitonic;
pub use keyvalue::GridBitonicKv;
pub use reference::{bitonic_sort, network_schedule};
pub use workload::BitonicWorkload;

/// Threads per block the paper uses for bitonic sort (Section 7.2).
pub const PAPER_THREADS_PER_BLOCK: usize = 512;

/// Key count used for the paper-scale experiments (Figures 13c/14c): many
/// short network steps, each cheaper than the CPU-implicit barrier
/// (~60% synchronization time, Table 1).
pub const PAPER_N: usize = 1 << 16;
