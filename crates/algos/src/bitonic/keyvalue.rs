//! Key–value bitonic sort (extension).
//!
//! The paper sorts bare keys; real sorting workloads almost always carry a
//! payload. This kernel applies the same network to `(key, value)` pairs,
//! swapping both arrays in lockstep. Pair ownership is identical to the
//! key-only kernel, so the race-freedom argument is unchanged.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::reference::{network_schedule, NetworkStep};

/// Bitonic sort of `(key, value)` pairs as a round-structured kernel.
pub struct GridBitonicKv {
    keys: GlobalBuffer<u32>,
    values: GlobalBuffer<u64>,
    schedule: Vec<NetworkStep>,
    n: usize,
}

impl GridBitonicKv {
    /// Prepare to sort `pairs` by key (length must be a power of two).
    ///
    /// # Panics
    /// Panics if lengths differ or are not a power of two.
    pub fn new(keys: &[u32], values: &[u64]) -> Self {
        assert_eq!(keys.len(), values.len(), "one value per key");
        let schedule = network_schedule(keys.len());
        GridBitonicKv {
            keys: GlobalBuffer::from_slice(keys),
            values: GlobalBuffer::from_slice(values),
            schedule,
            n: keys.len(),
        }
    }

    /// Sorted keys (after execution).
    pub fn keys(&self) -> Vec<u32> {
        self.keys.to_vec()
    }

    /// Values, permuted alongside their keys (after execution).
    pub fn values(&self) -> Vec<u64> {
        self.values.to_vec()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the input is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl RoundKernel for GridBitonicKv {
    fn rounds(&self) -> usize {
        self.schedule.len()
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let NetworkStep { k, j } = self.schedule[round];
        for i in ctx.chunk(self.n) {
            let partner = i ^ j;
            if partner > i {
                let ascending = (i & k) == 0;
                let a = self.keys.get(i);
                let b = self.keys.get(partner);
                if (a > b) == ascending {
                    self.keys.set(i, b);
                    self.keys.set(partner, a);
                    let va = self.values.get(i);
                    self.values.set(i, self.values.get(partner));
                    self.values.set(partner, va);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::random_keys;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run(keys: &[u32], values: &[u64], n_blocks: usize) -> (Vec<u32>, Vec<u64>) {
        let k = GridBitonicKv::new(keys, values);
        GridExecutor::new(GridConfig::new(n_blocks, 64), SyncMethod::GpuLockFree)
            .run(&k)
            .unwrap();
        (k.keys(), k.values())
    }

    #[test]
    fn pairs_travel_together() {
        // value = key as u64 + tag; after sorting, the pairing must hold.
        let keys = random_keys(1024, 9);
        let values: Vec<u64> = keys.iter().map(|&k| u64::from(k) << 8 | 0x5A).collect();
        let (sk, sv) = run(&keys, &values, 5);
        assert!(sk.windows(2).all(|w| w[0] <= w[1]));
        for (k, v) in sk.iter().zip(&sv) {
            assert_eq!(*v, u64::from(*k) << 8 | 0x5A, "pair broke");
        }
    }

    #[test]
    fn keys_match_plain_sort() {
        let keys = random_keys(512, 10);
        let values = vec![0u64; 512];
        let (sk, _) = run(&keys, &values, 4);
        let mut expected = keys;
        expected.sort_unstable();
        assert_eq!(sk, expected);
    }

    #[test]
    fn values_are_a_permutation() {
        let keys = random_keys(256, 11);
        let values: Vec<u64> = (0..256).collect();
        let (_, sv) = run(&keys, &values, 3);
        let mut seen = sv.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..256).collect::<Vec<u64>>());
    }

    #[test]
    fn duplicate_keys_keep_all_values() {
        let keys = vec![5u32; 64];
        let values: Vec<u64> = (0..64).collect();
        let (sk, sv) = run(&keys, &values, 2);
        assert_eq!(sk, keys);
        let mut seen = sv;
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn accessors() {
        let k = GridBitonicKv::new(&[1, 2], &[10, 20]);
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        assert_eq!(k.rounds(), 1);
    }

    #[test]
    #[should_panic(expected = "one value per key")]
    fn mismatched_lengths_rejected() {
        let _ = GridBitonicKv::new(&[1, 2], &[1]);
    }
}
