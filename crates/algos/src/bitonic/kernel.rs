//! Bitonic sort as a grid kernel: one round per network step.
//!
//! Each round applies one compare-exchange step; the `n/2` active pairs are
//! partitioned across blocks. A pair `(i, i^j)` is touched by exactly one
//! block (the one owning the pair index), so rounds are race-free under a
//! correct grid barrier. This is the kernel the paper contrasts with the
//! CUDA SDK's single-block bitonic sort: the grid barrier lets the network
//! span all 30 SMs and therefore sort far more than 512 keys.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

use super::reference::{network_schedule, NetworkStep};

/// The bitonic sorting network as a round-structured kernel.
pub struct GridBitonic {
    data: GlobalBuffer<u32>,
    schedule: Vec<NetworkStep>,
    n: usize,
}

impl GridBitonic {
    /// Prepare to sort `keys` (length must be a power of two).
    ///
    /// # Panics
    /// Panics unless the length is a power of two.
    pub fn new(keys: &[u32]) -> Self {
        let n = keys.len();
        let schedule = network_schedule(n); // validates the length
        GridBitonic {
            data: GlobalBuffer::from_slice(keys),
            schedule,
            n,
        }
    }

    /// The (sorted, after execution) keys.
    pub fn output(&self) -> Vec<u32> {
        self.data.to_vec()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl RoundKernel for GridBitonic {
    fn rounds(&self) -> usize {
        self.schedule.len()
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let NetworkStep { k, j } = self.schedule[round];
        // Pair p (0..n/2) maps to the p-th index i with i & j == 0... more
        // directly: iterate indices in this block's chunk and act on those
        // that are pair leaders (partner above them).
        for i in ctx.chunk(self.n) {
            let partner = i ^ j;
            if partner > i {
                let ascending = (i & k) == 0;
                let a = self.data.get(i);
                let b = self.data.get(partner);
                if (a > b) == ascending {
                    self.data.set(i, b);
                    self.data.set(partner, a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::random_keys;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run_sort(keys: &[u32], n_blocks: usize, method: SyncMethod) -> Vec<u32> {
        let kernel = GridBitonic::new(keys);
        GridExecutor::new(GridConfig::new(n_blocks, 64), method)
            .run(&kernel)
            .unwrap();
        kernel.output()
    }

    fn expect_sorted(keys: &[u32]) -> Vec<u32> {
        let mut v = keys.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn sorts_under_all_methods() {
        let keys = random_keys(1024, 50);
        let expected = expect_sorted(&keys);
        for method in SyncMethod::GPU_METHODS {
            assert_eq!(run_sort(&keys, 6, method), expected, "{method}");
        }
        for method in [SyncMethod::CpuExplicit, SyncMethod::CpuImplicit] {
            assert_eq!(run_sort(&keys, 6, method), expected, "{method}");
        }
    }

    #[test]
    fn beyond_single_block_capacity() {
        // The paper's motivation: the SDK sort caps at 512 keys (one
        // block); the grid-barrier version sorts more.
        let keys = random_keys(8192, 51);
        let expected = expect_sorted(&keys);
        assert_eq!(run_sort(&keys, 8, SyncMethod::GpuLockFree), expected);
    }

    #[test]
    fn chunk_boundaries_do_not_break_pairs() {
        // 3 blocks over 16 elements puts pair partners in different chunks
        // for large j; the partner-above-owner rule must still visit every
        // pair exactly once.
        let keys = random_keys(16, 52);
        let expected = expect_sorted(&keys);
        for n_blocks in 1..=8 {
            assert_eq!(
                run_sort(&keys, n_blocks, SyncMethod::GpuSimple),
                expected,
                "{n_blocks}"
            );
        }
    }

    #[test]
    fn already_sorted_and_reversed() {
        let sorted: Vec<u32> = (0..256).collect();
        assert_eq!(run_sort(&sorted, 4, SyncMethod::GpuLockFree), sorted);
        let reversed: Vec<u32> = (0..256).rev().collect();
        assert_eq!(run_sort(&reversed, 4, SyncMethod::GpuLockFree), sorted);
    }

    #[test]
    fn duplicate_keys_survive() {
        let keys = vec![7u32; 128];
        assert_eq!(
            run_sort(
                &keys,
                4,
                SyncMethod::GpuTree(blocksync_core::TreeLevels::Two)
            ),
            keys
        );
    }

    #[test]
    fn rounds_match_schedule() {
        let k = GridBitonic::new(&random_keys(1024, 0));
        assert_eq!(k.rounds(), 55);
        assert_eq!(k.len(), 1024);
        assert!(!k.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = GridBitonic::new(&[1, 2, 3]);
    }
}
