//! Sequential bitonic sorting network — the correctness oracle — and the
//! network schedule shared with the grid kernel.

/// One compare-exchange step of the network: all pairs `(i, i ^ j)` with
/// `i < (i ^ j)`, sorted ascending iff `(i & k) == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStep {
    /// The bitonic sequence size of the enclosing merge phase (a power of
    /// two, doubling each phase).
    pub k: usize,
    /// The compare distance within the phase (halving each step: k/2 .. 1).
    pub j: usize,
}

/// The full schedule of compare-exchange steps for `n = 2^m` keys, in
/// execution order: `m * (m + 1) / 2` steps.
///
/// # Panics
/// Panics unless `n` is a power of two.
pub fn network_schedule(n: usize) -> Vec<NetworkStep> {
    assert!(
        n.is_power_of_two(),
        "bitonic sort length must be a power of two, got {n}"
    );
    let mut steps = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            steps.push(NetworkStep { k, j });
            j /= 2;
        }
        k *= 2;
    }
    steps
}

/// Apply one network step to `data` in place.
pub fn apply_step(data: &mut [u32], step: NetworkStep) {
    let n = data.len();
    for i in 0..n {
        let partner = i ^ step.j;
        if partner > i {
            let ascending = (i & step.k) == 0;
            if (data[i] > data[partner]) == ascending {
                data.swap(i, partner);
            }
        }
    }
}

/// Sort `data` in place with the bitonic network.
///
/// # Panics
/// Panics unless the length is a power of two.
pub fn bitonic_sort(data: &mut [u32]) {
    for step in network_schedule(data.len()) {
        apply_step(data, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::random_keys;

    #[test]
    fn schedule_size_is_triangular() {
        // log2(n) = m -> m(m+1)/2 steps.
        assert_eq!(network_schedule(2).len(), 1);
        assert_eq!(network_schedule(4).len(), 3);
        assert_eq!(network_schedule(8).len(), 6);
        assert_eq!(network_schedule(1 << 10).len(), 55);
    }

    #[test]
    fn schedule_order_k_doubles_j_halves() {
        let s = network_schedule(8);
        assert_eq!(
            s,
            vec![
                NetworkStep { k: 2, j: 1 },
                NetworkStep { k: 4, j: 2 },
                NetworkStep { k: 4, j: 1 },
                NetworkStep { k: 8, j: 4 },
                NetworkStep { k: 8, j: 2 },
                NetworkStep { k: 8, j: 1 },
            ]
        );
    }

    #[test]
    fn sorts_random_inputs() {
        for log_n in 1..=12 {
            let mut data = random_keys(1 << log_n, log_n as u64);
            let mut expected = data.clone();
            expected.sort_unstable();
            bitonic_sort(&mut data);
            assert_eq!(data, expected, "n=2^{log_n}");
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        for data in [
            vec![0u32; 64],                                 // constant
            (0..64u32).collect::<Vec<_>>(),                 // already sorted
            (0..64u32).rev().collect::<Vec<_>>(),           // reversed
            (0..64u32).map(|i| i % 2).collect::<Vec<_>>(),  // alternating
            (0..64u32).map(|i| u32::MAX - i % 7).collect(), // near-max values
        ] {
            let mut d = data.clone();
            let mut expected = data;
            expected.sort_unstable();
            bitonic_sort(&mut d);
            assert_eq!(d, expected);
        }
    }

    #[test]
    fn single_element_is_trivially_sorted() {
        let mut d = vec![42u32];
        bitonic_sort(&mut d);
        assert_eq!(d, vec![42]);
        assert!(network_schedule(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![1u32, 2, 3];
        bitonic_sort(&mut d);
    }
}
