//! # blocksync-algos
//!
//! The three applications the paper uses to evaluate inter-block barrier
//! synchronization (Section 6), each built in three layers:
//!
//! | layer | purpose |
//! |---|---|
//! | `reference` | a plain sequential implementation, the correctness oracle |
//! | `kernel`    | a [`blocksync_core::RoundKernel`] running the algorithm on the persistent-kernel host runtime, one barrier per data-dependent step |
//! | `workload`  | a [`blocksync_sim::Workload`] cost model feeding the GTX-280 simulator, derived from the algorithm's per-round operation counts |
//!
//! The barrier structure mirrors the paper exactly:
//!
//! * **FFT** ([`fft`]) — `log2(n)` butterfly stages; computation within a
//!   stage is independent, stages are ordered → one grid barrier per stage.
//! * **Smith-Waterman** ([`swat`]) — wavefront fill of the alignment
//!   matrix; cells on one anti-diagonal are independent, diagonals are
//!   ordered → one grid barrier per anti-diagonal.
//! * **Bitonic sort** ([`bitonic`]) — a fixed network of compare-exchange
//!   steps; pairs within a step are independent, steps are ordered → one
//!   grid barrier per step.
//!
//! Extensions beyond the paper's three kernels: [`scan`] (grid-wide
//! prefix sum), [`fft::fft2d`] (fused 2-D FFT), [`bitonic::keyvalue`]
//! (key-value sort), and [`swat::global`] (Needleman-Wunsch).
//!
//! [`seqgen`] provides deterministic input generators (an embedded
//! SplitMix64, so library results are reproducible without external RNG
//! dependencies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod complex;
pub mod cost;
pub mod fft;
pub mod scan;
pub mod seqgen;
pub mod swat;

pub use complex::Complex32;
pub use cost::CostModel;
