//! Grid-wide inclusive prefix sum (extension).
//!
//! Scan is the canonical "less-data-dependent algorithm" the paper's
//! introduction motivates: every step is fully parallel, but steps are
//! ordered — `log2(n)` rounds of the Hillis-Steele recurrence
//! `x[i] += x[i - 2^k]`, each separated by a grid barrier. Without
//! inter-block synchronization a scan over more data than one block
//! handles requires a kernel relaunch per step; with a device-side barrier
//! it is one persistent kernel.
//!
//! Double-buffered (ping-pong) so that reads of round `k` never race with
//! writes of round `k` across blocks.

use blocksync_core::{BlockCtx, GlobalBuffer, RoundKernel};

/// Sequential reference inclusive scan.
pub fn inclusive_scan_reference(data: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u64;
    for &x in data {
        acc = acc.wrapping_add(x);
        out.push(acc);
    }
    out
}

/// Hillis-Steele inclusive scan as a round-structured grid kernel.
pub struct GridScan {
    bufs: [GlobalBuffer<u64>; 2],
    n: usize,
    steps: usize,
}

impl GridScan {
    /// Prepare a scan of `data` (any nonzero length; not restricted to
    /// powers of two).
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn new(data: &[u64]) -> Self {
        assert!(!data.is_empty(), "scan input must be non-empty");
        let n = data.len();
        let steps = usize::BITS as usize - (n - 1).leading_zeros() as usize;
        GridScan {
            bufs: [GlobalBuffer::from_slice(data), GlobalBuffer::new(n)],
            n,
            steps: steps.max(1),
        }
    }

    /// The inclusive prefix sums (after the kernel has run).
    pub fn output(&self) -> Vec<u64> {
        // After `steps` ping-pong rounds the result is in bufs[steps % 2].
        self.bufs[self.steps % 2].to_vec()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the scan is empty (never; construction requires data).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl RoundKernel for GridScan {
    fn rounds(&self) -> usize {
        self.steps
    }

    fn round(&self, ctx: &BlockCtx, round: usize) {
        let dist = 1usize << round;
        let src = &self.bufs[round % 2];
        let dst = &self.bufs[(round + 1) % 2];
        for i in ctx.chunk(self.n) {
            let v = if i >= dist {
                src.get(i).wrapping_add(src.get(i - dist))
            } else {
                src.get(i)
            };
            dst.set(i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqgen::SplitMix64;
    use blocksync_core::{GridConfig, GridExecutor, SyncMethod};

    fn run_scan(data: &[u64], n_blocks: usize, method: SyncMethod) -> Vec<u64> {
        let k = GridScan::new(data);
        GridExecutor::new(GridConfig::new(n_blocks, 64), method)
            .run(&k)
            .unwrap();
        k.output()
    }

    #[test]
    fn matches_reference_all_methods() {
        let mut rng = SplitMix64::new(77);
        let data: Vec<u64> = (0..1000).map(|_| rng.next_u64() >> 32).collect();
        let expected = inclusive_scan_reference(&data);
        for method in [
            SyncMethod::CpuImplicit,
            SyncMethod::GpuSimple,
            SyncMethod::GpuLockFree,
            SyncMethod::Dissemination,
        ] {
            assert_eq!(run_scan(&data, 6, method), expected, "{method}");
        }
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [1usize, 2, 3, 7, 100, 257, 1023] {
            let data: Vec<u64> = (1..=n as u64).collect();
            let got = run_scan(&data, 4, SyncMethod::GpuLockFree);
            let expected: Vec<u64> = (1..=n as u64).map(|i| i * (i + 1) / 2).collect();
            assert_eq!(got, expected, "n={n}");
        }
    }

    #[test]
    fn single_element() {
        assert_eq!(run_scan(&[42], 1, SyncMethod::GpuSimple), vec![42]);
    }

    #[test]
    fn wrapping_overflow_is_defined() {
        let data = vec![u64::MAX, 2, 3];
        let got = run_scan(&data, 2, SyncMethod::GpuLockFree);
        assert_eq!(got, vec![u64::MAX, 1, 4]);
    }

    #[test]
    fn block_count_invariance() {
        let data: Vec<u64> = (0..513).map(|i| i * 7 % 97).collect();
        let a = run_scan(&data, 1, SyncMethod::GpuLockFree);
        let b = run_scan(&data, 8, SyncMethod::GpuLockFree);
        assert_eq!(a, b);
    }

    #[test]
    fn round_count_is_log2_ceil() {
        assert_eq!(GridScan::new(&[1]).rounds(), 1);
        assert_eq!(GridScan::new(&[1; 2]).rounds(), 1);
        assert_eq!(GridScan::new(&[1; 3]).rounds(), 2);
        assert_eq!(GridScan::new(&[1; 1024]).rounds(), 10);
        assert_eq!(GridScan::new(&[1; 1025]).rounds(), 11);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = GridScan::new(&[]);
    }
}
