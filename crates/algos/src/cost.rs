//! Per-round compute cost model feeding the simulator.
//!
//! The simulator needs to know how long each block computes between
//! barriers. For each algorithm we know exactly how many *items* (FFT
//! butterflies, SWat cells, bitonic compare-exchanges) a block processes in
//! a round and what one item costs in global-memory traffic and arithmetic.
//! An SM is modeled as a throughput device: a round's duration is the
//! larger of its memory time and its arithmetic time (GPUs overlap the
//! two), plus a fixed per-round pipeline ramp.
//!
//! Per-SM bandwidth is the device bandwidth divided evenly across SMs —
//! on a GTX 280, 141.7 GB/s over 30 SMs ≈ 4.7 GB/s per SM — and per-SM
//! arithmetic is `sps_per_sm * clock` operations per second. These are
//! deliberately simple steady-state approximations: the figures this feeds
//! (13–15) depend on the *ratio* of compute to synchronization time, which
//! this model gets into the paper's measured ranges (see EXPERIMENTS.md).

use blocksync_device::{GpuSpec, SimDuration};

/// Cost of processing items of one kind on one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Global-memory bytes moved per item (reads + writes).
    pub bytes_per_item: f64,
    /// Arithmetic operations per item.
    pub ops_per_item: f64,
    /// Fixed per-round cost (pipeline ramp, address setup), ns.
    pub base_ns: f64,
    /// Per-SM memory bandwidth, bytes/ns (= GB/s / 1e0... bytes per ns).
    bw_per_sm: f64,
    /// Per-SM arithmetic throughput, ops/ns.
    ops_per_ns: f64,
}

impl CostModel {
    /// Build a cost model for `spec`, dividing device bandwidth evenly
    /// across its SMs.
    pub fn new(spec: &GpuSpec, bytes_per_item: f64, ops_per_item: f64, base_ns: f64) -> Self {
        let bw_per_sm = spec.mem_bandwidth_bytes_per_sec as f64 / 1e9 / spec.num_sms as f64;
        let ops_per_ns = spec.sps_per_sm as f64 * spec.sp_clock_mhz as f64 / 1e3;
        CostModel {
            bytes_per_item,
            ops_per_item,
            base_ns,
            bw_per_sm,
            ops_per_ns,
        }
    }

    /// Duration of a round in which one block processes `items` items.
    pub fn round_time(&self, items: usize) -> SimDuration {
        if items == 0 {
            // An idle block still executes the round prologue.
            return SimDuration::from_nanos(self.base_ns.round() as u64);
        }
        let mem_ns = items as f64 * self.bytes_per_item / self.bw_per_sm;
        let alu_ns = items as f64 * self.ops_per_item / self.ops_per_ns;
        let ns = self.base_ns + mem_ns.max(alu_ns);
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// FFT butterfly: two complex loads + two complex stores (8 bytes each
    /// as `float2`) plus a twiddle load amortized through shared memory;
    /// ~10 floating-point operations.
    pub fn fft(spec: &GpuSpec) -> Self {
        CostModel::new(spec, 36.0, 10.0, 900.0)
    }

    /// Smith-Waterman cell: ~7 global accesses (reads of H(nw), H/E(w),
    /// H/F(n); writes of H, E, F). Wavefront-diagonal access is
    /// **uncoalesced** on GT200 — each 4-byte access costs a full 32-byte
    /// memory transaction — so the effective traffic is ~7 x 32 B.
    /// ~12 integer ops for the affine-gap max cascade.
    pub fn swat(spec: &GpuSpec) -> Self {
        CostModel::new(spec, 224.0, 12.0, 900.0)
    }

    /// Bitonic compare-exchange: two 4-byte loads, up to two stores
    /// (~12 B effective), one compare.
    pub fn bitonic(spec: &GpuSpec) -> Self {
        CostModel::new(spec, 12.0, 2.0, 900.0)
    }

    /// The micro-benchmark's "mean of two floats" per-thread op: two 4-byte
    /// loads amortized by coalescing (~8 B effective), one add and one
    /// multiply. Calibrated so the paper's 10,000-round run computes for
    /// ~5 ms total (Figure 11's "computation time is only about 5 ms").
    pub fn microbench(spec: &GpuSpec) -> Self {
        CostModel::new(spec, 8.0, 2.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::gtx280()
    }

    #[test]
    fn zero_items_costs_base_only() {
        let m = CostModel::fft(&spec());
        assert_eq!(m.round_time(0), SimDuration::from_nanos(900));
    }

    #[test]
    fn cost_scales_linearly_in_items() {
        let m = CostModel::swat(&spec());
        let t1 = m.round_time(1000).as_nanos() as f64 - m.base_ns;
        let t2 = m.round_time(2000).as_nanos() as f64 - m.base_ns;
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }

    #[test]
    fn fft_round_in_expected_range() {
        // One stage of a 2^16-point FFT over 30 blocks: ~1092 butterflies
        // per block. On ~4.7 GB/s per SM that's several microseconds —
        // the regime where FFT compute dominates sync (rho > 0.8).
        let m = CostModel::fft(&spec());
        let t = m.round_time(32 * 1024 / 30);
        assert!(
            (4_000..40_000).contains(&t.as_nanos()),
            "unexpected stage time {t:?}"
        );
    }

    #[test]
    fn memory_bound_algorithms_are_bandwidth_limited() {
        // For all three algorithm models on the GTX 280, memory time
        // exceeds ALU time (they are memory bound, as on the real card).
        for m in [
            CostModel::fft(&spec()),
            CostModel::swat(&spec()),
            CostModel::bitonic(&spec()),
        ] {
            let items = 10_000;
            let mem_ns = items as f64 * m.bytes_per_item / (141.7 / 30.0);
            let alu_ns = items as f64 * m.ops_per_item / (8.0 * 1.296);
            assert!(mem_ns > alu_ns, "{m:?} should be memory bound");
        }
    }

    #[test]
    fn bigger_items_cost_more() {
        let f = CostModel::fft(&spec());
        let b = CostModel::bitonic(&spec());
        assert!(f.round_time(1000) > b.round_time(1000));
    }
}
