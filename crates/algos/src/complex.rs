//! Minimal single-precision complex arithmetic for the FFT.
//!
//! Implemented locally (rather than depending on an external crate) because
//! the FFT only needs add/sub/mul and a twiddle constructor, and the
//! workspace keeps its dependency set to the offline-approved list.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in `f32`, matching the precision the paper's CUDA FFT
/// uses on the GTX 280.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Zero.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// `e^(i * theta)` — the FFT twiddle factor.
    pub fn cis(theta: f32) -> Self {
        Complex32 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex32 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f32) -> Self {
        Complex32 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    fn add(self, o: Complex32) -> Complex32 {
        Complex32 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl AddAssign for Complex32 {
    fn add_assign(&mut self, o: Complex32) {
        *self = *self + o;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, o: Complex32) -> Complex32 {
        Complex32 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, o: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    fn neg(self) -> Complex32 {
        Complex32 {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(-3.0, 0.5);
        assert_eq!(a + b, Complex32::new(-2.0, 2.5));
        assert_eq!(a - b, Complex32::new(4.0, 1.5));
        assert_eq!(a + (-a), Complex32::ZERO);
        assert_eq!(a * Complex32::ONE, a);
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i^2 = -4 - 5.5i
        assert_eq!(a * b, Complex32::new(-4.0, -5.5));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..8 {
            let theta = k as f32 * std::f32::consts::FRAC_PI_4;
            let z = Complex32::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
        let i = Complex32::cis(std::f32::consts::FRAC_PI_2);
        assert!((i.re).abs() < 1e-6);
        assert!((i.im - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex32::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-6);
        assert!(p.im.abs() < 1e-6);
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Complex32::new(1.0, -1.0);
        a += Complex32::new(0.5, 0.5);
        assert_eq!(a, Complex32::new(1.5, -0.5));
        assert_eq!(a.scale(2.0), Complex32::new(3.0, -1.0));
    }
}
