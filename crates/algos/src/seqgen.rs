//! Deterministic input generators.
//!
//! All generators are seeded SplitMix64 streams, so every example, test and
//! benchmark in the workspace can reproduce its inputs exactly without an
//! external RNG dependency in the library itself.

use crate::complex::Complex32;

/// SplitMix64: tiny, fast, well-distributed; the canonical seed expander.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform in `0..bound` (bound > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// `n` complex samples with components uniform in `[-1, 1)` — FFT input.
pub fn complex_signal(n: usize, seed: u64) -> Vec<Complex32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Complex32::new(rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0))
        .collect()
}

/// Random `u32` keys — bitonic sort input.
pub fn random_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// The nucleotide alphabet used by the Smith-Waterman workload.
pub const DNA: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Random DNA sequence of length `n` — Smith-Waterman input.
pub fn dna_sequence(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| DNA[rng.next_below(4) as usize]).collect()
}

/// A pair of related DNA sequences: `b` is `a` with point mutations applied
/// at the given per-base probability — produces realistic local-alignment
/// structure (long high-scoring regions) rather than pure noise.
pub fn related_dna(n: usize, mutation_prob: f64, seed: u64) -> (Vec<u8>, Vec<u8>) {
    assert!((0.0..=1.0).contains(&mutation_prob));
    let a = dna_sequence(n, seed);
    let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
    let threshold = (mutation_prob * (1u64 << 32) as f64) as u64;
    let b = a
        .iter()
        .map(|&c| {
            if (rng.next_u64() >> 32) < threshold {
                DNA[rng.next_below(4) as usize]
            } else {
                c
            }
        })
        .collect();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.next_below(4);
            assert!(v < 4);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn generators_are_sized_and_deterministic() {
        assert_eq!(complex_signal(16, 1), complex_signal(16, 1));
        assert_eq!(random_keys(16, 1), random_keys(16, 1));
        assert_eq!(dna_sequence(16, 1), dna_sequence(16, 1));
        assert_eq!(complex_signal(10, 1).len(), 10);
        assert!(dna_sequence(100, 3).iter().all(|c| DNA.contains(c)));
    }

    #[test]
    fn related_dna_mutates_some_but_not_all() {
        let (a, b) = related_dna(2000, 0.1, 5);
        assert_eq!(a.len(), b.len());
        let diffs = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        // ~7.5% expected (10% mutation, 1/4 silent); allow wide margins.
        assert!(diffs > 50, "too few mutations: {diffs}");
        assert!(diffs < 400, "too many mutations: {diffs}");
    }

    #[test]
    fn zero_mutation_is_identity() {
        let (a, b) = related_dna(500, 0.0, 11);
        assert_eq!(a, b);
    }
}
