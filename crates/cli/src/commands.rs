//! Subcommand implementations.

use blocksync_algos::bitonic::{GridBitonic, GridBitonicBatched};
use blocksync_algos::fft::{kernel::Direction, GridFft};
use blocksync_algos::scan::{inclusive_scan_reference, GridScan};
use blocksync_algos::seqgen::{complex_signal, random_keys, related_dna, SplitMix64};
use blocksync_algos::swat::{
    needleman_wunsch, smith_waterman, GapPenalties, GridNw, GridSwat, GridSwatBanded, Scoring,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use blocksync_core::{
    AutoTuner, ChaosConfig, ChromeTraceBuilder, GridConfig, GridExecutor, GridRuntime, GridService,
    KernelStats, MetricsSnapshot, RoundKernel, RuntimeKind, ServiceChaosConfig, ServiceConfig,
    ServiceError, ShardKey, SyncMethod, SyncPolicy, TraceConfig,
};
use blocksync_device::{CalibrationProfile, GpuSpec};
use blocksync_microbench::{run_host_traced, MeanKernel};
use blocksync_sim::{try_simulate, ConstWorkload, SimConfig, TraceKind};

use crate::args::{parse_method, Args};

/// Fault policy from `--sync-timeout SECONDS` (0 or absent = wait forever,
/// the pre-policy behavior). A stuck run then fails with a diagnostic
/// naming the stuck block instead of hanging the process.
fn sync_policy(a: &Args) -> Result<SyncPolicy, String> {
    let secs = a.get_f64("sync-timeout", 0.0);
    if secs < 0.0 || !secs.is_finite() {
        return Err(format!("--sync-timeout expects seconds >= 0, got {secs}"));
    }
    Ok(if secs == 0.0 {
        SyncPolicy::default()
    } else {
        SyncPolicy::with_timeout(Duration::from_secs_f64(secs))
    })
}

/// Runtime selection from `--runtime scoped|pooled` (default scoped).
/// `pooled` keeps per-block workers resident across kernels
/// ([`blocksync_core::GridRuntime`]) so repeat launches pay the warm `t_O`.
/// Every method the pool supports — the GPU-side barriers, `cpu-implicit`
/// (its pipelined relaunches are the pool's launch log), and `no-sync` —
/// honours the request; `cpu-explicit` and `auto` fall back to scoped and
/// the run prints a one-line notice saying so.
fn runtime_kind(a: &Args) -> Result<RuntimeKind, String> {
    let s = a.get("runtime", "scoped");
    RuntimeKind::parse(s).ok_or_else(|| format!("unknown --runtime {s:?}; valid: scoped pooled"))
}

/// One-line notice when `--runtime pooled` was requested but the launch
/// engine fell back to a scoped run (the stats record the reason). Silent
/// for genuinely pooled runs and for scoped requests.
fn report_pool_fallback(stats: &KernelStats) {
    if let Some(reason) = stats.pool.as_ref().and_then(|p| p.fallback.as_deref()) {
        eprintln!("note: --runtime pooled ran scoped: {reason}");
    }
}

/// Telemetry plane from shared flags: `--trace FILE` (record a barrier
/// timeline and export chrome://tracing JSON) and/or `--metrics` (print
/// aggregate histograms); `--trace-stride N` samples every Nth round.
fn trace_config(a: &Args) -> Result<Option<TraceConfig>, String> {
    if !a.has("trace") && !a.has("metrics") {
        return Ok(None);
    }
    if a.has("trace") && a.get("trace", "").is_empty() {
        return Err("--trace expects an output file (e.g. --trace out.json)".into());
    }
    let stride = a.get_usize("trace-stride", 1);
    if stride == 0 {
        return Err("--trace-stride expects an integer >= 1".into());
    }
    Ok(Some(TraceConfig::new().with_stride(stride)))
}

/// Emit whatever telemetry output the flags asked for. No-op when the run
/// carried no telemetry and none was requested.
fn report_telemetry(stats: &KernelStats, a: &Args) -> Result<(), String> {
    let Some(t) = &stats.telemetry else {
        if a.has("trace") || a.has("metrics") {
            // Requested but the recorder is compiled out.
            eprintln!("note: blocksync-core was built without the `trace` feature; no telemetry");
        }
        return Ok(());
    };
    let path = a.get("trace", "");
    if !path.is_empty() {
        std::fs::write(path, t.chrome_trace(&stats.method))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote chrome://tracing timeline to {path} ({} events, {} dropped) — \
             open via chrome://tracing or https://ui.perfetto.dev",
            t.events.len(),
            t.dropped
        );
    }
    if a.has("metrics") {
        println!(
            "telemetry: {} events over {} sampled rounds (stride {}, {} dropped)",
            t.events.len(),
            t.rounds.len(),
            t.stride,
            t.dropped
        );
        println!(
            "  spin polls/wait    mean {:>10.0}  p50 {:>10}  p99 {:>10}  max {:>10}",
            t.spin_polls.mean(),
            t.spin_polls.percentile(0.50),
            t.spin_polls.percentile(0.99),
            t.spin_polls.max()
        );
        println!(
            "  sync/block/round   mean {:>8.1}us  p50 {:>8.1}us  p99 {:>8.1}us  max {:>8.1}us",
            t.sync_ns.mean() / 1e3,
            t.sync_ns.percentile(0.50) as f64 / 1e3,
            t.sync_ns.percentile(0.99) as f64 / 1e3,
            t.sync_ns.max() as f64 / 1e3
        );
        println!(
            "  arrival skew/round mean {:>8.1}us  p50 {:>8.1}us  p99 {:>8.1}us  max {:>8.1}us",
            t.arrival_skew_ns.mean() / 1e3,
            t.arrival_skew_ns.percentile(0.50) as f64 / 1e3,
            t.arrival_skew_ns.percentile(0.99) as f64 / 1e3,
            t.arrival_skew_ns.max() as f64 / 1e3
        );
        if let Some(w) = t.worst_round() {
            println!(
                "  worst skew: round {} ({:.1} us, straggler block {})",
                w.round,
                w.arrival_skew.as_secs_f64() * 1e6,
                w.straggler
            );
        }
    }
    Ok(())
}

/// Write the observability-plane snapshot to `--metrics-out FILE`
/// (`.json` gets the lossless JSON form, anything else the Prometheus
/// text exposition). No-op when the flag is absent.
fn write_metrics_out(snapshot: &MetricsSnapshot, a: &Args) -> Result<(), String> {
    let path = a.get("metrics-out", "");
    if path.is_empty() {
        if a.has("metrics-out") {
            return Err(
                "--metrics-out expects a file path (e.g. --metrics-out metrics.prom)".into(),
            );
        }
        return Ok(());
    }
    let body = if path.ends_with(".json") {
        snapshot.to_json()
    } else {
        snapshot.render_prometheus()
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote metrics snapshot to {path}");
    Ok(())
}

/// After a multi-launch run, summarize how many launches fell back from
/// pooled to scoped and why, from the `launch_fallbacks_total` labeled
/// counter. Silent when nothing fell back.
fn report_fallback_summary(snapshot: &MetricsSnapshot) {
    let Some(reasons) = snapshot.labeled.get("launch_fallbacks_total") else {
        return;
    };
    let total: u64 = reasons.values().sum();
    if total == 0 {
        return;
    }
    eprintln!("fallback summary: {total} pooled launch(es) ran scoped:");
    for (reason, n) in reasons {
        eprintln!("  {n}x {reason}");
    }
}

fn run_kernel<K: RoundKernel>(
    kernel: &K,
    blocks: usize,
    method: SyncMethod,
    a: &Args,
) -> Result<KernelStats, String> {
    let mut cfg = GridConfig::new(blocks, 64)
        .with_policy(sync_policy(a)?)
        .with_runtime(runtime_kind(a)?);
    if let Some(tc) = trace_config(a)? {
        cfg = cfg.with_trace(tc);
    }
    let exec = GridExecutor::new(cfg, method);
    let stats = exec.run(kernel).map_err(|e| e.to_string())?;
    report_pool_fallback(&stats);
    report_telemetry(&stats, a)?;
    write_metrics_out(&exec.observer().snapshot(), a)?;
    Ok(stats)
}

/// [`run_kernel`] without telemetry — for auxiliary verification passes
/// that must not overwrite the primary run's trace output.
fn run_kernel_plain<K: RoundKernel>(
    kernel: &K,
    blocks: usize,
    method: SyncMethod,
    a: &Args,
) -> Result<KernelStats, String> {
    let cfg = GridConfig::new(blocks, 64)
        .with_policy(sync_policy(a)?)
        .with_runtime(runtime_kind(a)?);
    GridExecutor::new(cfg, method)
        .run(kernel)
        .map_err(|e| e.to_string())
}

/// `blocksync simulate`.
pub fn simulate(a: &Args) -> Result<(), String> {
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let blocks = a.get_usize("blocks", 30);
    let rounds = a.get_usize("rounds", 10_000);
    let compute_us = a.get_f64("compute-us", 0.5);
    let mut cfg = SimConfig::new(blocks, a.get_usize("tpb", 256), method);
    if a.has("trace") {
        cfg.trace = true;
    }
    // Either a paper-scale application workload or the constant-compute
    // micro-benchmark shape.
    let w: Box<dyn blocksync_sim::Workload> = match a.get("algo", "micro") {
        "micro" => Box::new(ConstWorkload::from_micros(compute_us, rounds)),
        "fft" => Box::new(blocksync_algos::fft::FftWorkload::new(
            &cfg.spec,
            blocksync_algos::fft::PAPER_N,
            blocks,
        )),
        "swat" => {
            let l = blocksync_algos::swat::PAPER_SEQ_LEN;
            Box::new(blocksync_algos::swat::SwatWorkload::new(
                &cfg.spec, l, l, blocks,
            ))
        }
        "bitonic" => Box::new(blocksync_algos::bitonic::BitonicWorkload::new(
            &cfg.spec,
            blocksync_algos::bitonic::PAPER_N,
            blocks,
        )),
        other => {
            return Err(format!(
                "unknown --algo {other:?}; valid: micro fft swat bitonic"
            ))
        }
    };
    let r = try_simulate(&cfg, w.as_ref()).map_err(|e| e.to_string())?;
    println!(
        "device: {} | method: {method} | {blocks} blocks x {} rounds ({})",
        cfg.spec.name,
        r.rounds,
        a.get("algo", "micro")
    );
    println!("total          {}", r.total);
    println!("  launch (t_O) {}", r.launch);
    println!("  compute      {} (longest block)", r.max_compute());
    println!(
        "  sync (t_S)   {} ({:.1}% of total, {} per barrier)",
        r.sync_time(),
        r.sync_fraction() * 100.0,
        r.sync_per_round()
    );
    if a.has("trace") {
        println!("\nfirst trace events:");
        for e in r.trace.iter().take(12) {
            let kind = match e.kind {
                TraceKind::ComputeStart { round } => format!("compute {round}"),
                TraceKind::BarrierArrive { round } => format!("arrive  {round}"),
                TraceKind::BarrierRelease { round } => format!("release {round}"),
                TraceKind::KernelDone => "done".into(),
            };
            println!("  {:>10}  block {}  {}", e.time.to_string(), e.block, kind);
        }
        // `--trace FILE` (vs bare `--trace`) also exports the timeline.
        let path = a.get("trace", "");
        if !path.is_empty() {
            std::fs::write(path, sim_chrome_trace(&r.trace, method))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote chrome://tracing timeline to {path}");
        }
    }
    Ok(())
}

/// Export the simulator timeline through the shared Chrome-trace writer:
/// `compute` spans (compute start → barrier arrive), `sync` spans (arrive
/// → release), and a `done` marker per block — the same track layout the
/// host runtime's `--trace` produces.
fn sim_chrome_trace(trace: &[blocksync_sim::TraceEvent], method: SyncMethod) -> String {
    use std::collections::HashMap;
    let mut b = ChromeTraceBuilder::new();
    let mut open: HashMap<(usize, usize, bool), Duration> = HashMap::new();
    for e in trace {
        let at = Duration::from_nanos(e.time.as_nanos());
        match e.kind {
            TraceKind::ComputeStart { round } => {
                open.insert((e.block, round, false), at);
            }
            TraceKind::BarrierArrive { round } => {
                if let Some(s) = open.remove(&(e.block, round, false)) {
                    b.complete("compute", "round", e.block, s, at, round);
                }
                open.insert((e.block, round, true), at);
            }
            TraceKind::BarrierRelease { round } => {
                if let Some(s) = open.remove(&(e.block, round, true)) {
                    b.complete("sync", "barrier", e.block, s, at, round);
                }
            }
            TraceKind::KernelDone => b.instant("done", e.block, at),
        }
    }
    let m = method.to_string();
    b.finish(&[("method", m.as_str()), ("source", "simulator")])
}

/// `blocksync sort`.
pub fn sort(a: &Args) -> Result<(), String> {
    let n = a.get_usize("n", 65_536);
    let blocks = a.get_usize("blocks", 8);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let batch = a.get_usize("batch", 1);
    let keys = random_keys(n, a.get_usize("seed", 42) as u64);
    let stats = if batch > 1 {
        let kernel = GridBitonicBatched::new(&keys, batch);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        for s in 0..batch {
            let seg = kernel.segment(s);
            if !seg.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!("segment {s} not sorted — barrier failure?"));
            }
        }
        stats
    } else {
        let kernel = GridBitonic::new(&keys);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        let out = kernel.output();
        let mut expected = keys.clone();
        expected.sort_unstable();
        if out != expected {
            return Err("output mismatch vs std sort — barrier failure?".into());
        }
        stats
    };
    println!("sorted {n} keys ({batch} segment(s)) — verified");
    println!("{stats}");
    Ok(())
}

/// `blocksync align`.
pub fn align(a: &Args) -> Result<(), String> {
    let len = a.get_usize("len", 600);
    let blocks = a.get_usize("blocks", 6);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let mutation = a.get_f64("mutation", 0.05);
    let (sa, sb) = related_dna(len, mutation, a.get_usize("seed", 7) as u64);
    let (scoring, gaps) = (Scoring::dna(), GapPenalties::dna());
    if a.has("global") {
        let kernel = GridNw::new(&sa, &sb, scoring, gaps);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        let expected = needleman_wunsch(&sa, &sb, scoring, gaps);
        if kernel.score() != expected {
            return Err("global score mismatch vs reference".into());
        }
        println!(
            "Needleman-Wunsch global score: {} — verified",
            kernel.score()
        );
        println!("{stats}");
    } else if a.has("band") {
        let band = a.get_usize("band", 16);
        let kernel = GridSwatBanded::new(&sa, &sb, band, scoring, gaps, blocks);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        println!(
            "banded (w={band}) Smith-Waterman score: {} over {} in-band cells",
            kernel.result().score,
            kernel.band_cells()
        );
        println!("{stats}");
    } else {
        let kernel = GridSwat::new(&sa, &sb, scoring, gaps, blocks);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        let expected = smith_waterman(&sa, &sb, scoring, gaps);
        let got = kernel.result();
        if got.score != expected.score {
            return Err("local score mismatch vs reference".into());
        }
        println!(
            "Smith-Waterman local score: {} at {:?} — verified",
            got.score, got.end
        );
        println!("{stats}");
    }
    Ok(())
}

/// `blocksync fft`.
pub fn fft(a: &Args) -> Result<(), String> {
    let log_n = a.get_usize("log-n", 12);
    if log_n > 24 {
        return Err("--log-n capped at 24".into());
    }
    let blocks = a.get_usize("blocks", 6);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let n = 1usize << log_n;
    let input = complex_signal(n, a.get_usize("seed", 3) as u64);
    let direction = if a.has("inverse") {
        Direction::Inverse
    } else {
        Direction::Forward
    };
    let kernel = GridFft::new(&input, direction);
    let stats = run_kernel(&kernel, blocks, method, a)?;
    // Round-trip verification (forward then inverse must reproduce input).
    let spectrum = kernel.output();
    let back_kernel = GridFft::new(
        &spectrum,
        match direction {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        },
    );
    run_kernel_plain(&back_kernel, blocks, method, a)?;
    let err = blocksync_algos::fft::reference::max_error(&back_kernel.output(), &input);
    if err > 1e-2 {
        return Err(format!("round-trip error {err} too large"));
    }
    println!("{n}-point {direction:?} FFT, round-trip error {err:.2e} — verified");
    println!("{stats}");
    Ok(())
}

/// `blocksync scan`.
pub fn scan(a: &Args) -> Result<(), String> {
    let n = a.get_usize("n", 100_000);
    let blocks = a.get_usize("blocks", 4);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let mut rng = SplitMix64::new(a.get_usize("seed", 1) as u64);
    let data: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 40).collect();
    let kernel = GridScan::new(&data);
    let stats = run_kernel(&kernel, blocks, method, a)?;
    if kernel.output() != inclusive_scan_reference(&data) {
        return Err("scan mismatch vs reference".into());
    }
    println!(
        "inclusive scan of {n} values in {} barrier rounds — verified",
        stats.rounds
    );
    println!("{stats}");
    Ok(())
}

/// `blocksync micro`.
pub fn micro(a: &Args) -> Result<(), String> {
    let blocks = a.get_usize("blocks", 4);
    let rounds = a.get_usize("rounds", 2_000);
    let tpb = a.get_usize("tpb", 64);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let kernel = MeanKernel::for_grid(blocks, tpb, rounds);
    let mut cfg = GridConfig::new(blocks, tpb)
        .with_policy(sync_policy(a)?)
        .with_runtime(runtime_kind(a)?);
    if let Some(tc) = trace_config(a)? {
        cfg = cfg.with_trace(tc);
    }
    let exec = GridExecutor::new(cfg, method);
    let stats = exec.run(&kernel).map_err(|e| e.to_string())?;
    if !kernel.verify() {
        return Err("micro-benchmark produced wrong means".into());
    }
    report_pool_fallback(&stats);
    println!("mean-of-two-floats micro-benchmark — verified");
    println!("{stats}");
    report_telemetry(&stats, a)?;
    write_metrics_out(&exec.observer().snapshot(), a)?;
    Ok(())
}

/// `blocksync metrics` — exercise the observability plane end to end:
/// push a window of pipelined pooled launches through one [`GridRuntime`],
/// verify every kernel, then print the cross-launch metrics registry in
/// Prometheus text exposition format (submit→stats latency histograms per
/// method, warm/cold and failure counters, live queue-depth gauge).
pub fn metrics(a: &Args) -> Result<(), String> {
    let blocks = a.get_usize("blocks", 4);
    let rounds = a.get_usize("rounds", 200);
    let tpb = a.get_usize("tpb", 64);
    let launches = a.get_usize("launches", 16);
    let window = a.get_usize("window", 4).max(1);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    if launches == 0 {
        return Err("--launches expects an integer >= 1".into());
    }
    let cfg = GridConfig::new(blocks, tpb)
        .with_policy(sync_policy(a)?)
        .with_runtime(RuntimeKind::Pooled);
    let rt = GridRuntime::new(cfg, method).map_err(|e| e.to_string())?;
    let mut kernels = Vec::with_capacity(launches);
    let mut inflight = VecDeque::new();
    for _ in 0..launches {
        let kernel = Arc::new(MeanKernel::for_grid(blocks, tpb, rounds));
        let handle = rt.submit(Arc::clone(&kernel)).map_err(|e| e.to_string())?;
        kernels.push(kernel);
        inflight.push_back(handle);
        if inflight.len() >= window {
            let h = inflight.pop_front().expect("nonempty");
            h.wait().map_err(|e| e.to_string())?;
        }
    }
    while let Some(h) = inflight.pop_front() {
        h.wait().map_err(|e| e.to_string())?;
    }
    if !kernels.iter().all(|k| k.verify()) {
        return Err("micro-benchmark produced wrong means".into());
    }
    let snapshot = rt.observer().snapshot();
    println!(
        "# {launches} pooled {method} launches, {blocks} blocks x {rounds} rounds, \
         window {window} — verified"
    );
    print!("{}", snapshot.render_prometheus());
    report_fallback_summary(&snapshot);
    write_metrics_out(&snapshot, a)?;
    Ok(())
}

/// `blocksync tune` — dump the auto-tuner's view of a grid size: the
/// calibration it prices with, the full Eq. 6–9 prediction table (with the
/// tuned tree group size), the chosen method, and every pairwise crossover
/// point where one method overtakes another as the grid grows.
pub fn tune(a: &Args) -> Result<(), String> {
    let blocks = a.get_usize("blocks", 30);
    if blocks == 0 {
        return Err("--blocks expects an integer >= 1".into());
    }
    let profile = a.get("profile", "host");
    let tuner = match profile {
        "host" => AutoTuner::host(),
        "gtx280" => AutoTuner::with_profile(CalibrationProfile::gtx280()),
        "fermi" => AutoTuner::with_profile(CalibrationProfile::fermi_class()),
        other => {
            return Err(format!(
                "unknown --profile {other:?}; valid: host gtx280 fermi"
            ))
        }
    };
    let max_gpu = a.get_usize(
        "max-gpu-blocks",
        GpuSpec::gtx280().max_persistent_blocks() as usize,
    );
    let decision = tuner.decide(blocks, max_gpu);
    let cal = tuner.calibration();

    println!(
        "calibration ({profile}): t_a={}ns  t_c={}ns  store={}ns  launch={}ns  \
         warm-launch={}ns  explicit-round={}ns  implicit-round={}ns",
        cal.atomic_add_ns,
        cal.poll_round_trip().as_nanos(),
        cal.mem_write_service_ns + cal.write_visibility_ns,
        cal.kernel_launch_ns,
        cal.warm_launch_ns,
        cal.explicit_round_overhead_ns,
        cal.implicit_round_overhead_ns
    );
    println!(
        "topology: {} cluster(s) {:?}; GPU-side methods spin up to {max_gpu} blocks, \
         park (priced) beyond",
        decision.topology.num_clusters(),
        decision.topology.cluster_sizes
    );
    println!("\nprediction table for {blocks} blocks (predicted t_S per barrier):");
    for row in &decision.table {
        let mark = if row.method == decision.chosen {
            '*'
        } else {
            ' '
        };
        let note = if !row.eligible {
            "  (ineligible: grid exceeds persistent-block capacity)"
        } else if row.oversubscribed {
            "  (oversubscribed: parks past capacity; includes park/wake wave penalty)"
        } else {
            ""
        };
        println!(
            " {mark} {:<16} {:>12.0} ns{note}",
            row.method.to_string(),
            row.predicted_sync_ns
        );
    }
    println!(
        "\nchosen: {} (predicted t_S {:.0} ns)",
        decision.chosen, decision.predicted_sync_ns
    );
    match decision.pooled_launch_speedup() {
        Some(speedup) if decision.prefers_pooled() => println!(
            "launch pricing: cold t_O {:.0} ns vs warm (pooled) {:.0} ns — \
             repeat launches are {speedup:.1}x cheaper under --runtime pooled",
            decision.launch_cold_ns, decision.launch_warm_ns
        ),
        _ => println!(
            "launch pricing: cold t_O {:.0} ns, warm {:.0} ns — \
             pooling does not pay for this grid (CPU-side choice or flat costs)",
            decision.launch_cold_ns, decision.launch_warm_ns
        ),
    }

    let max_n = a.get_usize("max-n", 1024);
    let crossovers = blocksync_model::crossover_table(cal, max_n);
    if crossovers.is_empty() {
        println!("no crossovers in 2..={max_n} blocks");
    } else {
        println!("crossover points (N <= {max_n} blocks):");
        for (from, to, n) in crossovers {
            println!(
                "  {:<16} overtaken by {:<16} at N = {n}",
                from.name(),
                to.name()
            );
        }
    }
    Ok(())
}

/// `blocksync trace` — run the micro-benchmark with the telemetry plane on
/// and print the per-round skew/straggler table.
pub fn trace(a: &Args) -> Result<(), String> {
    let blocks = a.get_usize("blocks", 4);
    let rounds = a.get_usize("rounds", 200);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let stride = a.get_usize("stride", 1);
    if stride == 0 {
        return Err("--stride expects an integer >= 1".into());
    }
    let tc = TraceConfig::new().with_stride(stride);
    let (stats, ok) = run_host_traced(blocks, a.get_usize("tpb", 64), rounds, method, tc)
        .map_err(|e| e.to_string())?;
    if !ok {
        return Err("micro-benchmark produced wrong means".into());
    }
    let Some(t) = &stats.telemetry else {
        return Err("blocksync-core was built without the `trace` feature".into());
    };
    println!(
        "{}: {} blocks x {} rounds — {} events over {} sampled rounds (stride {}, {} dropped)",
        stats.method,
        stats.n_blocks,
        stats.rounds,
        t.events.len(),
        t.rounds.len(),
        t.stride,
        t.dropped
    );
    print!("{}", t.round_table(a.get_usize("limit", 20)));
    println!(
        "spin polls/wait: mean {:.0}, p99 {}; sync/block/round: mean {:.1} us, p99 {:.1} us",
        t.spin_polls.mean(),
        t.spin_polls.percentile(0.99),
        t.sync_ns.mean() / 1e3,
        t.sync_ns.percentile(0.99) as f64 / 1e3
    );
    let out = a.get("out", "");
    if !out.is_empty() {
        std::fs::write(out, t.chrome_trace(&stats.method))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote chrome://tracing timeline to {out}");
    }
    Ok(())
}

/// `blocksync chaos` — the chaos soak harness: push pipelined launches
/// through the runtime where a configurable fraction carry seeded-random
/// fault schedules, and assert after every faulty launch that the error
/// names the scheduled cause, the pool self-heals, and interleaved clean
/// launches stay bit-identical. The seed is always printed so any red run
/// replays with one command.
pub fn chaos(a: &Args) -> Result<(), String> {
    if a.has("service") {
        return chaos_service(a);
    }
    let defaults = ChaosConfig::default();
    let timeout_secs = a.get_f64("sync-timeout", defaults.timeout.as_secs_f64());
    if timeout_secs <= 0.0 || !timeout_secs.is_finite() {
        return Err("chaos needs a positive --sync-timeout (faults must be detected)".into());
    }
    let postmortem_dir = match a.get("postmortem-dir", "") {
        "" if a.has("postmortem-dir") => {
            return Err("--postmortem-dir expects a directory path".into())
        }
        "" => None,
        dir => Some(std::path::PathBuf::from(dir)),
    };
    let cfg = ChaosConfig {
        launches: a.get_usize("launches", defaults.launches),
        fault_rate: a.get_f64("fault-rate", defaults.fault_rate),
        seed: a.get_usize("seed", defaults.seed as usize) as u64,
        method: parse_method(a.get("method", "gpu-lock-free"))?,
        runtime: runtime_kind_default_pooled(a)?,
        n_blocks: a.get_usize("blocks", defaults.n_blocks),
        threads_per_block: a.get_usize("tpb", defaults.threads_per_block),
        rounds: a.get_usize("rounds", defaults.rounds),
        timeout: Duration::from_secs_f64(timeout_secs),
        window: a.get_usize("window", defaults.window),
        postmortem_dir,
    };
    println!(
        "chaos soak: {} launches, fault rate {:.2}, {} runtime, method {}, \
         {} blocks x {} rounds, timeout {:?}, seed {}",
        cfg.launches,
        cfg.fault_rate,
        cfg.runtime,
        cfg.method,
        cfg.n_blocks,
        cfg.rounds,
        cfg.timeout,
        cfg.seed
    );
    let report = with_injected_panics_silenced(|| cfg.run())?;
    println!("{report}");
    if let Some(dir) = &cfg.postmortem_dir {
        let dumped = report.outcomes.iter().filter(|o| o.error.is_some()).count();
        println!("wrote {dumped} postmortem(s) to {}", dir.display());
    }
    let json_path = a.get("json", "");
    if json_path.is_empty() && a.has("json") {
        return Err("--json expects a file path (e.g. --json chaos.json)".into());
    }
    if !json_path.is_empty() {
        std::fs::write(json_path, report.to_json())
            .map_err(|e| format!("cannot write {json_path}: {e}"))?;
        println!("wrote chaos report to {json_path}");
    }
    if let Some(metrics) = &report.metrics {
        report_fallback_summary(metrics);
        write_metrics_out(metrics, a)?;
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s); reproduce with --seed {}",
            report.failures.len(),
            report.seed
        ))
    }
}

/// Injected round-body panics are caught by the engine and surfaced as
/// `BlockPanicked`; silence their default panic-hook spew for the duration
/// of `f` so soak output stays readable, while real (un-injected) panics
/// still print.
fn with_injected_panics_silenced<T>(f: impl FnOnce() -> T) -> T {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected fault:"));
        if !injected {
            previous(info);
        }
    }));
    let out = f();
    let _ = std::panic::take_hook(); // restore default panic reporting
    out
}

/// Parse a comma-separated shard list: `BLOCKSxTPB/METHOD,...`
/// (e.g. `4x8/gpu-lock-free,3x8/gpu-simple`) — the `Display` form of
/// [`ShardKey`]. Empty spec keeps `default`.
fn parse_shards(spec: &str, default: Vec<ShardKey>) -> Result<Vec<ShardKey>, String> {
    if spec.is_empty() {
        return Ok(default);
    }
    spec.split(',')
        .map(|part| {
            let err = || {
                format!(
                    "bad shard spec {part:?}; expected BLOCKSxTPB/METHOD \
                     (e.g. 4x8/gpu-lock-free)"
                )
            };
            let (shape, method) = part.split_once('/').ok_or_else(err)?;
            let (blocks, tpb) = shape.split_once('x').ok_or_else(err)?;
            let blocks: usize = blocks.trim().parse().map_err(|_| err())?;
            let tpb: usize = tpb.trim().parse().map_err(|_| err())?;
            Ok(ShardKey::new(blocks, tpb, parse_method(method.trim())?))
        })
        .collect()
}

/// `blocksync chaos --service` — the chaos soak retargeted at **live
/// service shards**: seeded fault schedules ride a fraction of real
/// traffic routed through a [`GridService`], and the report asserts each
/// faulted shard heals in place while its siblings keep serving clean
/// bit-identical launches.
fn chaos_service(a: &Args) -> Result<(), String> {
    let defaults = ServiceChaosConfig::default();
    let timeout_secs = a.get_f64("sync-timeout", defaults.timeout.as_secs_f64());
    if timeout_secs <= 0.0 || !timeout_secs.is_finite() {
        return Err("chaos needs a positive --sync-timeout (faults must be detected)".into());
    }
    let postmortem_dir = match a.get("postmortem-dir", "") {
        "" if a.has("postmortem-dir") => {
            return Err("--postmortem-dir expects a directory path".into())
        }
        "" => None,
        dir => Some(std::path::PathBuf::from(dir)),
    };
    let cfg = ServiceChaosConfig {
        launches: a.get_usize("launches", defaults.launches),
        fault_rate: a.get_f64("fault-rate", defaults.fault_rate),
        seed: a.get_usize("seed", defaults.seed as usize) as u64,
        shards: parse_shards(a.get("shards", ""), defaults.shards)?,
        rounds: a.get_usize("rounds", defaults.rounds),
        timeout: Duration::from_secs_f64(timeout_secs),
        window: a.get_usize("window", defaults.window),
        postmortem_dir,
    };
    println!(
        "service chaos soak: {} launches across {} shard(s) [{}], fault rate {:.2}, \
         window {}, timeout {:?}, seed {}",
        cfg.launches,
        cfg.shards.len(),
        cfg.shards
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        cfg.fault_rate,
        cfg.window,
        cfg.timeout,
        cfg.seed
    );
    let report = with_injected_panics_silenced(|| cfg.run())?;
    println!("{report}");
    if let Some(dir) = &cfg.postmortem_dir {
        let dumped = report.outcomes.iter().filter(|o| o.error.is_some()).count();
        println!("wrote {dumped} postmortem(s) to {}", dir.display());
    }
    let json_path = a.get("json", "");
    if json_path.is_empty() && a.has("json") {
        return Err("--json expects a file path (e.g. --json chaos.json)".into());
    }
    if !json_path.is_empty() {
        std::fs::write(json_path, report.to_json())
            .map_err(|e| format!("cannot write {json_path}: {e}"))?;
        println!("wrote chaos report to {json_path}");
    }
    if let Some(metrics) = &report.metrics {
        report_shard_summary(metrics);
        report_fallback_summary(metrics);
        write_metrics_out(metrics, a)?;
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s); reproduce with --seed {} --service",
            report.failures.len(),
            report.seed
        ))
    }
}

/// Per-shard traffic table from a service metrics snapshot.
fn report_shard_summary(snapshot: &MetricsSnapshot) {
    let Some(by_shard) = snapshot.labeled.get("shard_launches_total") else {
        return;
    };
    println!("per-shard traffic:");
    for (shard, launches) in by_shard {
        let depth = snapshot
            .labeled_gauges
            .get("queue_depth")
            .and_then(|g| g.get(shard))
            .copied()
            .unwrap_or(0);
        println!("  {shard:<24} {launches:>6} launches   queue depth {depth}");
    }
    if let Some(rejections) = snapshot.labeled.get("service_rejections_total") {
        for (reason, n) in rejections {
            println!("  rejected ({reason}): {n}");
        }
    }
}

/// `blocksync serve` — barrier-as-a-service demo: one [`GridService`]
/// fronting several shard shapes, hammered by many client threads that
/// pipeline mixed-shape submissions through the bounded admission plane.
/// Prints the per-shard traffic table and admission outcomes.
pub fn serve(a: &Args) -> Result<(), String> {
    let clients = a.get_usize("clients", 8);
    let per_client = a.get_usize("launches", 32);
    let rounds = a.get_usize("rounds", 50);
    let seed = a.get_usize("seed", 42) as u64;
    let deadline = Duration::from_secs_f64(a.get_f64("deadline", 2.0));
    let shards = parse_shards(
        a.get("shards", ""),
        vec![
            ShardKey::new(4, 8, SyncMethod::GpuLockFree),
            ShardKey::new(3, 8, SyncMethod::GpuSimple),
            ShardKey::new(2, 8, SyncMethod::SenseReversing),
        ],
    )?;
    if clients == 0 || per_client == 0 {
        return Err("--clients and --launches must be >= 1".into());
    }
    let mut template = GridConfig::new(1, 1);
    template = template.with_policy(sync_policy(a)?);
    let svc = GridService::new(
        ServiceConfig::default()
            .with_max_shards(a.get_usize("max-shards", shards.len()))
            .with_queue_capacity(a.get_usize("queue-capacity", 16))
            .with_tenant_quota(a.get_usize("quota", 8))
            .with_idle_ttl(Duration::from_millis(a.get_usize("idle-ttl-ms", 500) as u64))
            .with_template(template),
    );
    println!(
        "serving {} shard shape(s) to {clients} client(s) x {per_client} launches \
         ({rounds} rounds each, admission deadline {deadline:?})",
        shards.len()
    );
    let total_ok = std::sync::atomic::AtomicUsize::new(0);
    let total_deadline = std::sync::atomic::AtomicUsize::new(0);
    let start = std::time::Instant::now();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let svc = &svc;
                let shards = &shards;
                let total_ok = &total_ok;
                let total_deadline = &total_deadline;
                scope.spawn(move || -> Result<(), String> {
                    let tenant = format!("client-{c}");
                    let mut rng = SplitMix64::new(seed ^ (c as u64).wrapping_mul(0x9e37));
                    let mut inflight: VecDeque<(Arc<MeanKernel>, blocksync_core::ServiceHandle)> =
                        VecDeque::new();
                    let settle = |(kernel, handle): (
                        Arc<MeanKernel>,
                        blocksync_core::ServiceHandle,
                    )|
                     -> Result<(), String> {
                        handle.wait().map_err(|e| e.to_string())?;
                        if !kernel.verify() {
                            return Err("a served launch produced wrong means".into());
                        }
                        total_ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        Ok(())
                    };
                    for _ in 0..per_client {
                        let key = shards[rng.next_below(shards.len() as u64) as usize];
                        let kernel = Arc::new(MeanKernel::for_grid(
                            key.blocks,
                            key.threads_per_block,
                            rounds,
                        ));
                        match svc.submit_within(
                            &tenant,
                            key,
                            Arc::clone(&kernel) as Arc<dyn RoundKernel + Send + Sync>,
                            deadline,
                        ) {
                            Ok(h) => inflight.push_back((kernel, h)),
                            Err(ServiceError::Deadline { .. }) => {
                                total_deadline.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(e) => return Err(e.to_string()),
                        }
                        if inflight.len() >= 4 {
                            settle(inflight.pop_front().expect("nonempty"))?;
                        }
                    }
                    while let Some(pair) = inflight.pop_front() {
                        settle(pair)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("client thread panicked").err())
            .collect()
    });
    let elapsed = start.elapsed();
    if let Some(e) = errors.first() {
        return Err(format!("{} client(s) failed; first: {e}", errors.len()));
    }
    let ok = total_ok.load(std::sync::atomic::Ordering::Relaxed);
    let missed = total_deadline.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "served {ok} launches in {elapsed:?} ({:.0} launches/s), {missed} missed the \
         admission deadline, {} shard(s) live at shutdown",
        ok as f64 / elapsed.as_secs_f64(),
        svc.shards_live()
    );
    let snapshot = svc.observer().snapshot();
    report_shard_summary(&snapshot);
    write_metrics_out(&snapshot, a)?;
    Ok(())
}

/// Like [`runtime_kind`] but defaulting to pooled — chaos exists mainly to
/// soak the pool's abandon-and-replace path.
fn runtime_kind_default_pooled(a: &Args) -> Result<RuntimeKind, String> {
    let s = a.get("runtime", "pooled");
    RuntimeKind::parse(s).ok_or_else(|| format!("unknown --runtime {s:?}; valid: scoped pooled"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blocksync_core::{BlockCtx, GlobalBuffer};

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn sort_command_verifies() {
        sort(&args(&["sort", "--n", "1024", "--blocks", "3"])).unwrap();
        sort(&args(&[
            "sort", "--n", "1024", "--blocks", "3", "--batch", "4",
        ]))
        .unwrap();
    }

    #[test]
    fn align_command_all_modes() {
        align(&args(&["align", "--len", "120", "--blocks", "3"])).unwrap();
        align(&args(&[
            "align", "--len", "120", "--blocks", "3", "--global",
        ]))
        .unwrap();
        align(&args(&[
            "align", "--len", "120", "--blocks", "3", "--band", "8",
        ]))
        .unwrap();
    }

    #[test]
    fn fft_command_round_trips() {
        fft(&args(&["fft", "--log-n", "8", "--blocks", "3"])).unwrap();
        fft(&args(&[
            "fft",
            "--log-n",
            "8",
            "--blocks",
            "3",
            "--inverse",
        ]))
        .unwrap();
        assert!(fft(&args(&["fft", "--log-n", "30"])).is_err());
    }

    #[test]
    fn scan_and_micro_commands() {
        scan(&args(&["scan", "--n", "5000", "--blocks", "3"])).unwrap();
        micro(&args(&["micro", "--blocks", "2", "--rounds", "100"])).unwrap();
    }

    #[test]
    fn trace_command_and_flags() {
        // The table view runs and verifies.
        trace(&args(&["trace", "--blocks", "2", "--rounds", "50"])).unwrap();
        trace(&args(&[
            "trace", "--blocks", "2", "--rounds", "50", "--stride", "5",
        ]))
        .unwrap();
        assert!(trace(&args(&["trace", "--stride", "0"])).is_err());
        // `--metrics` prints the histogram summary without failing.
        micro(&args(&[
            "micro",
            "--blocks",
            "2",
            "--rounds",
            "50",
            "--metrics",
        ]))
        .unwrap();
        // Bare `--trace` on a host command needs a file path.
        let e = micro(&args(&[
            "micro", "--blocks", "2", "--rounds", "10", "--trace",
        ]))
        .unwrap_err();
        assert!(e.contains("--trace"), "{e}");
    }

    #[test]
    fn trace_flag_writes_chrome_json() {
        let dir = std::env::temp_dir();
        let host = dir.join("blocksync-cli-host-trace.json");
        let sim = dir.join("blocksync-cli-sim-trace.json");
        let host_s = host.to_str().unwrap();
        let sim_s = sim.to_str().unwrap();
        micro(&args(&[
            "micro", "--blocks", "2", "--rounds", "40", "--trace", host_s,
        ]))
        .unwrap();
        simulate(&args(&[
            "simulate", "--blocks", "4", "--rounds", "20", "--trace", sim_s,
        ]))
        .unwrap();
        for p in [&host, &sim] {
            let json = std::fs::read_to_string(p).unwrap();
            assert!(json.starts_with("{\"traceEvents\":["), "{json}");
            assert!(json.contains("\"ph\":\"X\""), "{json}");
            assert!(json.contains("\"name\":\"sync\""), "{json}");
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn sync_timeout_flag() {
        // A generous timeout must not perturb a healthy run.
        sort(&args(&[
            "sort",
            "--n",
            "1024",
            "--blocks",
            "3",
            "--sync-timeout",
            "30",
        ]))
        .unwrap();
        // Invalid values are rejected with a usage error, not a panic.
        let e = sort(&args(&["sort", "--n", "64", "--sync-timeout", "-1"])).unwrap_err();
        assert!(e.contains("sync-timeout"), "{e}");
        // Zero means "wait forever" (the default policy).
        assert_eq!(
            sync_policy(&args(&["--sync-timeout", "0"])).unwrap(),
            SyncPolicy::default()
        );
        assert_eq!(
            sync_policy(&args(&["--sync-timeout", "2.5"]))
                .unwrap()
                .timeout,
            Some(Duration::from_millis(2500))
        );
    }

    #[test]
    fn tune_command_prints_the_model_view() {
        // A deterministic profile must succeed and reject bad inputs.
        tune(&args(&["tune", "--profile", "gtx280", "--blocks", "30"])).unwrap();
        tune(&args(&[
            "tune",
            "--profile",
            "fermi",
            "--blocks",
            "64",
            "--max-n",
            "128",
        ]))
        .unwrap();
        assert!(tune(&args(&["tune", "--profile", "voodoo2"])).is_err());
        assert!(tune(&args(&["tune", "--blocks", "0"])).is_err());
    }

    #[test]
    fn runtime_flag_selects_pooled() {
        // A pooled run completes and verifies like a scoped one.
        sort(&args(&[
            "sort",
            "--n",
            "1024",
            "--blocks",
            "3",
            "--runtime",
            "pooled",
        ]))
        .unwrap();
        scan(&args(&[
            "scan",
            "--n",
            "5000",
            "--blocks",
            "3",
            "--runtime",
            "pooled",
        ]))
        .unwrap();
        // CPU-implicit is pool-eligible now: the run must be genuinely
        // pooled, with no fallback notice to print.
        sort(&args(&[
            "sort",
            "--n",
            "1024",
            "--blocks",
            "3",
            "--method",
            "cpu-implicit",
            "--runtime",
            "pooled",
        ]))
        .unwrap();
        // Unknown runtimes are usage errors, not panics.
        let e = sort(&args(&["sort", "--n", "64", "--runtime", "warp"])).unwrap_err();
        assert!(e.contains("--runtime"), "{e}");
        // Default is scoped.
        assert_eq!(runtime_kind(&args(&[])).unwrap(), RuntimeKind::Scoped);
        assert_eq!(
            runtime_kind(&args(&["--runtime", "pooled"])).unwrap(),
            RuntimeKind::Pooled
        );
    }

    /// The silent-fallback fix: a pooled request a pool cannot serve still
    /// succeeds, and the stats carry the reason the CLI prints as a notice.
    #[test]
    fn pooled_fallback_is_recorded_not_silent() {
        struct Bump(GlobalBuffer<u64>);
        impl RoundKernel for Bump {
            fn rounds(&self) -> usize {
                3
            }
            fn round(&self, ctx: &BlockCtx, _round: usize) {
                self.0.set(ctx.block_id, self.0.get(ctx.block_id) + 1);
            }
        }
        let a = args(&["--runtime", "pooled"]);
        // cpu-explicit relaunches from the host: scoped fallback, recorded.
        let k = Bump(GlobalBuffer::new(2));
        let stats = run_kernel(&k, 2, SyncMethod::CpuExplicit, &a).unwrap();
        let pool = stats.pool.as_deref().expect("fallback must be recorded");
        assert!(!pool.ran_pooled());
        assert!(
            pool.fallback.as_deref().unwrap().contains("cpu-explicit"),
            "{:?}",
            pool.fallback
        );
        // cpu-implicit is served by a real pool: no fallback to report.
        let k = Bump(GlobalBuffer::new(2));
        let stats = run_kernel(&k, 2, SyncMethod::CpuImplicit, &a).unwrap();
        let pool = stats
            .pool
            .as_deref()
            .expect("pooled run carries pool stats");
        assert!(pool.ran_pooled());
        assert!(pool.fallback.is_none());
        // `report_pool_fallback` itself is a no-op for scoped requests.
        let k = Bump(GlobalBuffer::new(2));
        let stats = run_kernel(&k, 2, SyncMethod::CpuExplicit, &args(&[])).unwrap();
        assert!(stats.pool.is_none());
        report_pool_fallback(&stats);
    }

    #[test]
    fn metrics_command_renders_prometheus_and_exports() {
        metrics(&args(&[
            "metrics",
            "--launches",
            "6",
            "--blocks",
            "2",
            "--rounds",
            "50",
        ]))
        .unwrap();
        assert!(metrics(&args(&["metrics", "--launches", "0"])).is_err());
        // `--metrics-out` writes Prometheus text or lossless JSON by extension.
        let dir = std::env::temp_dir();
        let prom = dir.join("blocksync-cli-metrics.prom");
        let json = dir.join("blocksync-cli-metrics.json");
        metrics(&args(&[
            "metrics",
            "--launches",
            "4",
            "--blocks",
            "2",
            "--rounds",
            "20",
            "--metrics-out",
            prom.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("blocksync_launches_total 4"), "{text}");
        assert!(
            text.contains("# TYPE blocksync_queue_depth gauge"),
            "{text}"
        );
        micro(&args(&[
            "micro",
            "--blocks",
            "2",
            "--rounds",
            "20",
            "--metrics-out",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let snap = MetricsSnapshot::from_json(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(snap.counters["launches_total"], 1);
        // Bare flag is a usage error, not a silent no-op.
        let e = micro(&args(&[
            "micro",
            "--blocks",
            "2",
            "--rounds",
            "10",
            "--metrics-out",
        ]))
        .unwrap_err();
        assert!(e.contains("--metrics-out"), "{e}");
        for p in [&prom, &json] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn chaos_command_writes_report_json_and_postmortems() {
        let dir = std::env::temp_dir().join("blocksync-cli-chaos-pm");
        let _ = std::fs::remove_dir_all(&dir);
        let json = std::env::temp_dir().join("blocksync-cli-chaos.json");
        chaos(&args(&[
            "chaos",
            "--launches",
            "20",
            "--fault-rate",
            "0.3",
            "--seed",
            "42",
            "--rounds",
            "6",
            "--sync-timeout",
            "0.08",
            "--json",
            json.to_str().unwrap(),
            "--postmortem-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"outcomes\""), "{report}");
        assert!(report.contains("\"generation_delta\""), "{report}");
        assert!(report.contains("\"metrics\""), "{report}");
        let dumps: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!dumps.is_empty(), "seed 42 at 30% must fail some launches");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&json);
    }

    #[test]
    fn auto_method_runs_end_to_end() {
        micro(&args(&[
            "micro", "--blocks", "2", "--rounds", "50", "--method", "auto",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_command_shapes() {
        simulate(&args(&["simulate", "--rounds", "100", "--blocks", "8"])).unwrap();
        simulate(&args(&[
            "simulate", "--rounds", "50", "--blocks", "8", "--trace",
        ]))
        .unwrap();
        simulate(&args(&["simulate", "--algo", "bitonic", "--blocks", "30"])).unwrap();
        assert!(simulate(&args(&["simulate", "--algo", "quantum"])).is_err());
        // Oversubscribed GPU barrier reports a deadlock error, not a hang.
        let e = simulate(&args(&["simulate", "--blocks", "31", "--rounds", "10"])).unwrap_err();
        assert!(e.contains("deadlock"), "{e}");
    }
}
