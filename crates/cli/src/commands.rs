//! Subcommand implementations.

use blocksync_algos::bitonic::{GridBitonic, GridBitonicBatched};
use blocksync_algos::fft::{kernel::Direction, GridFft};
use blocksync_algos::scan::{inclusive_scan_reference, GridScan};
use blocksync_algos::seqgen::{complex_signal, random_keys, related_dna, SplitMix64};
use blocksync_algos::swat::{
    needleman_wunsch, smith_waterman, GapPenalties, GridNw, GridSwat, GridSwatBanded, Scoring,
};
use std::time::Duration;

use blocksync_core::{GridConfig, GridExecutor, KernelStats, RoundKernel, SyncMethod, SyncPolicy};
use blocksync_microbench::run_host_with;
use blocksync_sim::{try_simulate, ConstWorkload, SimConfig, TraceKind};

use crate::args::{parse_method, Args};

/// Fault policy from `--sync-timeout SECONDS` (0 or absent = wait forever,
/// the pre-policy behavior). A stuck run then fails with a diagnostic
/// naming the stuck block instead of hanging the process.
fn sync_policy(a: &Args) -> Result<SyncPolicy, String> {
    let secs = a.get_f64("sync-timeout", 0.0);
    if secs < 0.0 || !secs.is_finite() {
        return Err(format!("--sync-timeout expects seconds >= 0, got {secs}"));
    }
    Ok(if secs == 0.0 {
        SyncPolicy::default()
    } else {
        SyncPolicy::with_timeout(Duration::from_secs_f64(secs))
    })
}

fn run_kernel<K: RoundKernel>(
    kernel: &K,
    blocks: usize,
    method: SyncMethod,
    a: &Args,
) -> Result<KernelStats, String> {
    let cfg = GridConfig::new(blocks, 64).with_policy(sync_policy(a)?);
    GridExecutor::new(cfg, method)
        .run(kernel)
        .map_err(|e| e.to_string())
}

/// `blocksync simulate`.
pub fn simulate(a: &Args) -> Result<(), String> {
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let blocks = a.get_usize("blocks", 30);
    let rounds = a.get_usize("rounds", 10_000);
    let compute_us = a.get_f64("compute-us", 0.5);
    let mut cfg = SimConfig::new(blocks, a.get_usize("tpb", 256), method);
    if a.has("trace") {
        cfg.trace = true;
    }
    // Either a paper-scale application workload or the constant-compute
    // micro-benchmark shape.
    let w: Box<dyn blocksync_sim::Workload> = match a.get("algo", "micro") {
        "micro" => Box::new(ConstWorkload::from_micros(compute_us, rounds)),
        "fft" => Box::new(blocksync_algos::fft::FftWorkload::new(
            &cfg.spec,
            blocksync_algos::fft::PAPER_N,
            blocks,
        )),
        "swat" => {
            let l = blocksync_algos::swat::PAPER_SEQ_LEN;
            Box::new(blocksync_algos::swat::SwatWorkload::new(
                &cfg.spec, l, l, blocks,
            ))
        }
        "bitonic" => Box::new(blocksync_algos::bitonic::BitonicWorkload::new(
            &cfg.spec,
            blocksync_algos::bitonic::PAPER_N,
            blocks,
        )),
        other => {
            return Err(format!(
                "unknown --algo {other:?}; valid: micro fft swat bitonic"
            ))
        }
    };
    let r = try_simulate(&cfg, w.as_ref()).map_err(|e| e.to_string())?;
    println!(
        "device: {} | method: {method} | {blocks} blocks x {} rounds ({})",
        cfg.spec.name,
        r.rounds,
        a.get("algo", "micro")
    );
    println!("total          {}", r.total);
    println!("  launch (t_O) {}", r.launch);
    println!("  compute      {} (longest block)", r.max_compute());
    println!(
        "  sync (t_S)   {} ({:.1}% of total, {} per barrier)",
        r.sync_time(),
        r.sync_fraction() * 100.0,
        r.sync_per_round()
    );
    if a.has("trace") {
        println!("\nfirst trace events:");
        for e in r.trace.iter().take(12) {
            let kind = match e.kind {
                TraceKind::ComputeStart { round } => format!("compute {round}"),
                TraceKind::BarrierArrive { round } => format!("arrive  {round}"),
                TraceKind::BarrierRelease { round } => format!("release {round}"),
                TraceKind::KernelDone => "done".into(),
            };
            println!("  {:>10}  block {}  {}", e.time.to_string(), e.block, kind);
        }
    }
    Ok(())
}

/// `blocksync sort`.
pub fn sort(a: &Args) -> Result<(), String> {
    let n = a.get_usize("n", 65_536);
    let blocks = a.get_usize("blocks", 8);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let batch = a.get_usize("batch", 1);
    let keys = random_keys(n, a.get_usize("seed", 42) as u64);
    let stats = if batch > 1 {
        let kernel = GridBitonicBatched::new(&keys, batch);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        for s in 0..batch {
            let seg = kernel.segment(s);
            if !seg.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!("segment {s} not sorted — barrier failure?"));
            }
        }
        stats
    } else {
        let kernel = GridBitonic::new(&keys);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        let out = kernel.output();
        let mut expected = keys.clone();
        expected.sort_unstable();
        if out != expected {
            return Err("output mismatch vs std sort — barrier failure?".into());
        }
        stats
    };
    println!("sorted {n} keys ({batch} segment(s)) — verified");
    println!("{stats}");
    Ok(())
}

/// `blocksync align`.
pub fn align(a: &Args) -> Result<(), String> {
    let len = a.get_usize("len", 600);
    let blocks = a.get_usize("blocks", 6);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let mutation = a.get_f64("mutation", 0.05);
    let (sa, sb) = related_dna(len, mutation, a.get_usize("seed", 7) as u64);
    let (scoring, gaps) = (Scoring::dna(), GapPenalties::dna());
    if a.has("global") {
        let kernel = GridNw::new(&sa, &sb, scoring, gaps);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        let expected = needleman_wunsch(&sa, &sb, scoring, gaps);
        if kernel.score() != expected {
            return Err("global score mismatch vs reference".into());
        }
        println!(
            "Needleman-Wunsch global score: {} — verified",
            kernel.score()
        );
        println!("{stats}");
    } else if a.has("band") {
        let band = a.get_usize("band", 16);
        let kernel = GridSwatBanded::new(&sa, &sb, band, scoring, gaps, blocks);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        println!(
            "banded (w={band}) Smith-Waterman score: {} over {} in-band cells",
            kernel.result().score,
            kernel.band_cells()
        );
        println!("{stats}");
    } else {
        let kernel = GridSwat::new(&sa, &sb, scoring, gaps, blocks);
        let stats = run_kernel(&kernel, blocks, method, a)?;
        let expected = smith_waterman(&sa, &sb, scoring, gaps);
        let got = kernel.result();
        if got.score != expected.score {
            return Err("local score mismatch vs reference".into());
        }
        println!(
            "Smith-Waterman local score: {} at {:?} — verified",
            got.score, got.end
        );
        println!("{stats}");
    }
    Ok(())
}

/// `blocksync fft`.
pub fn fft(a: &Args) -> Result<(), String> {
    let log_n = a.get_usize("log-n", 12);
    if log_n > 24 {
        return Err("--log-n capped at 24".into());
    }
    let blocks = a.get_usize("blocks", 6);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let n = 1usize << log_n;
    let input = complex_signal(n, a.get_usize("seed", 3) as u64);
    let direction = if a.has("inverse") {
        Direction::Inverse
    } else {
        Direction::Forward
    };
    let kernel = GridFft::new(&input, direction);
    let stats = run_kernel(&kernel, blocks, method, a)?;
    // Round-trip verification (forward then inverse must reproduce input).
    let spectrum = kernel.output();
    let back_kernel = GridFft::new(
        &spectrum,
        match direction {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        },
    );
    run_kernel(&back_kernel, blocks, method, a)?;
    let err = blocksync_algos::fft::reference::max_error(&back_kernel.output(), &input);
    if err > 1e-2 {
        return Err(format!("round-trip error {err} too large"));
    }
    println!("{n}-point {direction:?} FFT, round-trip error {err:.2e} — verified");
    println!("{stats}");
    Ok(())
}

/// `blocksync scan`.
pub fn scan(a: &Args) -> Result<(), String> {
    let n = a.get_usize("n", 100_000);
    let blocks = a.get_usize("blocks", 4);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let mut rng = SplitMix64::new(a.get_usize("seed", 1) as u64);
    let data: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 40).collect();
    let kernel = GridScan::new(&data);
    let stats = run_kernel(&kernel, blocks, method, a)?;
    if kernel.output() != inclusive_scan_reference(&data) {
        return Err("scan mismatch vs reference".into());
    }
    println!(
        "inclusive scan of {n} values in {} barrier rounds — verified",
        stats.rounds
    );
    println!("{stats}");
    Ok(())
}

/// `blocksync micro`.
pub fn micro(a: &Args) -> Result<(), String> {
    let blocks = a.get_usize("blocks", 4);
    let rounds = a.get_usize("rounds", 2_000);
    let method = parse_method(a.get("method", "gpu-lock-free"))?;
    let (stats, ok) = run_host_with(
        blocks,
        a.get_usize("tpb", 64),
        rounds,
        method,
        sync_policy(a)?,
    )
    .map_err(|e| e.to_string())?;
    if !ok {
        return Err("micro-benchmark produced wrong means".into());
    }
    println!("mean-of-two-floats micro-benchmark — verified");
    println!("{stats}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn sort_command_verifies() {
        sort(&args(&["sort", "--n", "1024", "--blocks", "3"])).unwrap();
        sort(&args(&[
            "sort", "--n", "1024", "--blocks", "3", "--batch", "4",
        ]))
        .unwrap();
    }

    #[test]
    fn align_command_all_modes() {
        align(&args(&["align", "--len", "120", "--blocks", "3"])).unwrap();
        align(&args(&[
            "align", "--len", "120", "--blocks", "3", "--global",
        ]))
        .unwrap();
        align(&args(&[
            "align", "--len", "120", "--blocks", "3", "--band", "8",
        ]))
        .unwrap();
    }

    #[test]
    fn fft_command_round_trips() {
        fft(&args(&["fft", "--log-n", "8", "--blocks", "3"])).unwrap();
        fft(&args(&[
            "fft",
            "--log-n",
            "8",
            "--blocks",
            "3",
            "--inverse",
        ]))
        .unwrap();
        assert!(fft(&args(&["fft", "--log-n", "30"])).is_err());
    }

    #[test]
    fn scan_and_micro_commands() {
        scan(&args(&["scan", "--n", "5000", "--blocks", "3"])).unwrap();
        micro(&args(&["micro", "--blocks", "2", "--rounds", "100"])).unwrap();
    }

    #[test]
    fn sync_timeout_flag() {
        // A generous timeout must not perturb a healthy run.
        sort(&args(&[
            "sort",
            "--n",
            "1024",
            "--blocks",
            "3",
            "--sync-timeout",
            "30",
        ]))
        .unwrap();
        // Invalid values are rejected with a usage error, not a panic.
        let e = sort(&args(&["sort", "--n", "64", "--sync-timeout", "-1"])).unwrap_err();
        assert!(e.contains("sync-timeout"), "{e}");
        // Zero means "wait forever" (the default policy).
        assert_eq!(
            sync_policy(&args(&["--sync-timeout", "0"])).unwrap(),
            SyncPolicy::default()
        );
        assert_eq!(
            sync_policy(&args(&["--sync-timeout", "2.5"]))
                .unwrap()
                .timeout,
            Some(Duration::from_millis(2500))
        );
    }

    #[test]
    fn simulate_command_shapes() {
        simulate(&args(&["simulate", "--rounds", "100", "--blocks", "8"])).unwrap();
        simulate(&args(&[
            "simulate", "--rounds", "50", "--blocks", "8", "--trace",
        ]))
        .unwrap();
        simulate(&args(&["simulate", "--algo", "bitonic", "--blocks", "30"])).unwrap();
        assert!(simulate(&args(&["simulate", "--algo", "quantum"])).is_err());
        // Oversubscribed GPU barrier reports a deadlock error, not a hang.
        let e = simulate(&args(&["simulate", "--blocks", "31", "--rounds", "10"])).unwrap_err();
        assert!(e.contains("deadlock"), "{e}");
    }
}
