//! Minimal argument parsing (`--key value` and `--key=value`), hand-rolled
//! to keep the workspace inside its offline dependency set.

use std::collections::HashMap;

use blocksync_core::{SyncMethod, TreeLevels};

/// Parsed command-line flags.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
}

impl Args {
    /// Parse an iterator of raw arguments (without the program name).
    ///
    /// `--key value` and `--key=value` both set `key`; a trailing `--key`
    /// with no value sets it to the empty string (presence flag).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut flags = HashMap::new();
        let mut positional = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else if iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = iter.next().expect("peeked");
                    flags.insert(stripped.to_string(), v);
                } else {
                    flags.insert(stripped.to_string(), String::new());
                }
            } else {
                positional.push(arg);
            }
        }
        Args { flags, positional }
    }

    /// Whether `--key` was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// String flag with default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Integer flag with default.
    ///
    /// # Panics
    /// Panics with a usage message on unparsable values.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        match self.flags.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// Float flag with default.
    ///
    /// # Panics
    /// Panics with a usage message on unparsable values.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        match self.flags.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")),
        }
    }
}

/// Parse a synchronization method name (the `Display` forms).
///
/// # Errors
/// Returns the list of valid names on failure.
pub fn parse_method(name: &str) -> Result<SyncMethod, String> {
    Ok(match name {
        "cpu-explicit" => SyncMethod::CpuExplicit,
        "cpu-implicit" => SyncMethod::CpuImplicit,
        "gpu-simple" | "simple" => SyncMethod::GpuSimple,
        "gpu-tree-2" | "tree-2" => SyncMethod::GpuTree(TreeLevels::Two),
        "gpu-tree-3" | "tree-3" => SyncMethod::GpuTree(TreeLevels::Three),
        "gpu-lock-free" | "lock-free" | "lockfree" => SyncMethod::GpuLockFree,
        "sense-reversing" | "sense" => SyncMethod::SenseReversing,
        "dissemination" => SyncMethod::Dissemination,
        "no-sync" | "none" => SyncMethod::NoSync,
        "auto" => SyncMethod::Auto,
        other => {
            return Err(format!(
                "unknown method {other:?}; valid: cpu-explicit cpu-implicit gpu-simple \
                 gpu-tree-2 gpu-tree-3 gpu-lock-free sense-reversing dissemination no-sync \
                 auto"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn key_value_styles() {
        let a = parse(&["sort", "--n", "1024", "--method=lock-free", "--verbose"]);
        assert_eq!(a.positional, vec!["sort"]);
        assert_eq!(a.get_usize("n", 0), 1024);
        assert_eq!(a.get("method", ""), "lock-free");
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        assert_eq!(a.get_usize("missing", 7), 7);
        assert_eq!(a.get_f64("missing", 0.5), 0.5);
    }

    #[test]
    fn flag_followed_by_flag_is_presence() {
        let a = parse(&["--trace", "--n", "5"]);
        assert!(a.has("trace"));
        assert_eq!(a.get("trace", "x"), "");
        assert_eq!(a.get_usize("n", 0), 5);
    }

    #[test]
    fn method_names_round_trip() {
        for m in blocksync_core::SyncMethod::PAPER_METHODS {
            assert_eq!(parse_method(&m.to_string()).unwrap(), m);
        }
        assert_eq!(parse_method("lockfree").unwrap(), SyncMethod::GpuLockFree);
        assert_eq!(parse_method("auto").unwrap(), SyncMethod::Auto);
        assert!(parse_method("warp-speed").is_err());
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = parse(&["--n", "many"]);
        let _ = a.get_usize("n", 0);
    }
}
