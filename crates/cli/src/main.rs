//! `blocksync` — command-line interface to the persistent-kernel runtime
//! and the GTX 280 simulator.
//!
//! ```text
//! blocksync simulate --method gpu-lock-free --blocks 30 --rounds 10000 --compute-us 0.5
//! blocksync sort     --n 65536 --blocks 8 --method lock-free
//! blocksync align    --len 600 --mutation 0.05 --blocks 6 [--global] [--band 16]
//! blocksync fft      --log-n 12 --blocks 6 [--inverse]
//! blocksync scan     --n 100000 --blocks 4
//! blocksync micro    --blocks 4 --rounds 2000 [--trace out.json] [--metrics]
//! blocksync trace    --blocks 4 --rounds 200 --method lock-free
//! blocksync chaos    --launches 200 --fault-rate 0.25 --seed 42 [--service]
//! blocksync serve    --clients 8 --launches 32 --rounds 50
//! blocksync metrics  --launches 16 --blocks 4 --rounds 200
//! ```
//!
//! Every subcommand prints what it verified, what it measured, and (for
//! `simulate`) the paper-model decomposition.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let parsed = args::Args::parse(raw);
    let command = parsed.positional.first().cloned().unwrap_or_default();
    let result = match command.as_str() {
        "simulate" => commands::simulate(&parsed),
        "sort" => commands::sort(&parsed),
        "align" => commands::align(&parsed),
        "fft" => commands::fft(&parsed),
        "scan" => commands::scan(&parsed),
        "micro" => commands::micro(&parsed),
        "trace" => commands::trace(&parsed),
        "tune" => commands::tune(&parsed),
        "chaos" => commands::chaos(&parsed),
        "serve" => commands::serve(&parsed),
        "metrics" => commands::metrics(&parsed),
        other => Err(format!("unknown command {other:?}; run `blocksync help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "blocksync — inter-block GPU barrier synchronization (Xiao & Feng, IPDPS 2010)

USAGE:
  blocksync <command> [--flags]

COMMANDS:
  simulate   simulate a round-structured kernel on the GTX 280 model
             --method M --blocks N --rounds R --compute-us C [--trace]
  sort       bitonic-sort random keys on the host runtime
             --n KEYS --blocks N --method M [--batch B]
  align      Smith-Waterman (or --global Needleman-Wunsch) two related
             DNA sequences      --len L --mutation P --blocks N [--band W]
  fft        forward (or --inverse) FFT of a random signal
             --log-n K --blocks N --method M
  scan       grid-wide inclusive prefix sum
             --n LEN --blocks N --method M
  micro      the paper's Section 5.4 micro-benchmark on the host runtime
             --blocks N --rounds R --method M
  trace      micro-benchmark with the telemetry plane on: per-round
             arrival-skew/straggler table plus spin/sync histograms
             --blocks N --rounds R --method M [--stride S] [--limit K]
             [--out FILE]
  tune       dump the auto-tuner's Eq. 6-9 prediction table, chosen method,
             and method crossover points for a grid size
             --blocks N [--profile host|gtx280|fermi] [--max-gpu-blocks B]
             [--max-n N]
  chaos      chaos soak: pipelined launches where a fraction carry
             seeded-random fault schedules (panics, delays, stragglers,
             stalls — in round bodies, barrier waits, or pooled assembly);
             asserts errors name the cause, the pool self-heals, and clean
             launches stay bit-identical. Prints the seed for repro.
             --launches N --fault-rate F --seed S --method M --blocks B
             --rounds R [--runtime pooled|scoped] [--window W]
             [--sync-timeout SECS] [--json FILE] [--postmortem-dir DIR]
             With --service the soak retargets live GridService shards:
             seeded faults ride a fraction of traffic routed across
             --shards BxT/METHOD,... (default 3 mixed shapes) and the
             report additionally asserts every shard still serves clean
             bit-identical launches afterwards.
  serve      barrier-as-a-service demo: one GridService fronting several
             shard shapes, hammered by concurrent client threads through
             the bounded admission plane (per-shard queues, per-tenant
             quotas, blocking submit with deadline); prints the per-shard
             traffic table
             --clients N --launches PER_CLIENT --rounds R
             [--shards BxT/METHOD,...] [--queue-capacity Q] [--quota K]
             [--deadline SECS] [--idle-ttl-ms MS] [--metrics-out FILE]
  metrics    exercise the observability plane: a window of pipelined
             pooled launches through one runtime, then the cross-launch
             metrics registry in Prometheus text format (per-method
             submit-to-stats latency, warm/cold/failure counters, queue
             depth) plus a fallback summary
             --launches N --blocks B --rounds R --method M [--window W]
             [--metrics-out FILE]

COMMON FLAGS:
  --runtime R        scoped (default) spawns workers per run; pooled keeps
                     per-block workers resident across kernels so repeat
                     launches pay the warm t_O (GPU-side methods only —
                     CPU-side methods relaunch per round and stay scoped).
  --sync-timeout S   bound every barrier wait to S seconds (host-runtime
                     commands); a stuck or crashed block then fails the run
                     with a diagnostic naming it instead of hanging.
                     0 or absent = wait forever.
  --trace FILE       record a barrier timeline and write chrome://tracing
                     JSON to FILE (host-runtime commands; open it via
                     chrome://tracing or https://ui.perfetto.dev). On
                     `simulate`, bare --trace prints the first simulator
                     events and --trace FILE also exports the timeline.
  --metrics          print aggregate telemetry after the run: spin polls
                     per wait, sync time per block per round, and arrival
                     skew per round (mean/p50/p99/max).
  --metrics-out F    write the cross-launch observability snapshot to F
                     after the run: `.json` gets the lossless JSON form,
                     anything else Prometheus text exposition (run/micro/
                     chaos/metrics commands).
  --postmortem-dir D (chaos) write a JSON postmortem per failed launch —
                     the flight-recorder record with the fault schedule,
                     stuck diagnostic, and recent trace events — into D.
  --json FILE        (chaos) serialize the full chaos report: per-launch
                     outcomes, fault schedules, generation deltas, and
                     the end-of-soak metrics snapshot.
  --trace-stride N   sample the timeline every Nth round (default 1).

METHODS:
  cpu-explicit cpu-implicit gpu-simple gpu-tree-2 gpu-tree-3 gpu-lock-free
  sense-reversing dissemination no-sync auto

  `auto` calibrates the host once per process, prices every method with the
  Eq. 6-9 cost model, and runs the cheapest one (see `blocksync tune`)."
    );
}
