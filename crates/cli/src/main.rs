//! `blocksync` — command-line interface to the persistent-kernel runtime
//! and the GTX 280 simulator.
//!
//! ```text
//! blocksync simulate --method gpu-lock-free --blocks 30 --rounds 10000 --compute-us 0.5
//! blocksync sort     --n 65536 --blocks 8 --method lock-free
//! blocksync align    --len 600 --mutation 0.05 --blocks 6 [--global] [--band 16]
//! blocksync fft      --log-n 12 --blocks 6 [--inverse]
//! blocksync scan     --n 100000 --blocks 4
//! blocksync micro    --blocks 4 --rounds 2000
//! ```
//!
//! Every subcommand prints what it verified, what it measured, and (for
//! `simulate`) the paper-model decomposition.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let parsed = args::Args::parse(raw);
    let command = parsed.positional.first().cloned().unwrap_or_default();
    let result = match command.as_str() {
        "simulate" => commands::simulate(&parsed),
        "sort" => commands::sort(&parsed),
        "align" => commands::align(&parsed),
        "fft" => commands::fft(&parsed),
        "scan" => commands::scan(&parsed),
        "micro" => commands::micro(&parsed),
        other => Err(format!("unknown command {other:?}; run `blocksync help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "blocksync — inter-block GPU barrier synchronization (Xiao & Feng, IPDPS 2010)

USAGE:
  blocksync <command> [--flags]

COMMANDS:
  simulate   simulate a round-structured kernel on the GTX 280 model
             --method M --blocks N --rounds R --compute-us C [--trace]
  sort       bitonic-sort random keys on the host runtime
             --n KEYS --blocks N --method M [--batch B]
  align      Smith-Waterman (or --global Needleman-Wunsch) two related
             DNA sequences      --len L --mutation P --blocks N [--band W]
  fft        forward (or --inverse) FFT of a random signal
             --log-n K --blocks N --method M
  scan       grid-wide inclusive prefix sum
             --n LEN --blocks N --method M
  micro      the paper's Section 5.4 micro-benchmark on the host runtime
             --blocks N --rounds R --method M

COMMON FLAGS:
  --sync-timeout S   bound every barrier wait to S seconds (host-runtime
                     commands); a stuck or crashed block then fails the run
                     with a diagnostic naming it instead of hanging.
                     0 or absent = wait forever.

METHODS:
  cpu-explicit cpu-implicit gpu-simple gpu-tree-2 gpu-tree-3 gpu-lock-free
  sense-reversing dissemination no-sync"
    );
}
