//! Property-based tests of the auto-tuning layer: the `Auto` method's
//! selection must be exactly what the Eq. 6–9 cost model says is optimal.
//!
//! Three invariant families:
//!
//! 1. **Tuned tree fan-out is a true argmin** — for random calibration
//!    profiles (flat topology, so no cluster snapping), the group size the
//!    tuner offers for the 2-level tree equals the brute-force argmin of
//!    `t_gts_grouped` over *every* valid group size.
//! 2. **`Auto` never loses to the paper's best method** — whatever it
//!    picks is predicted no worse than GPU lock-free at large `N` (and, by
//!    construction, no worse than any other table row).
//! 3. **Distinct calibration regimes flip the choice** — profiles shaped
//!    like the GTX 280, like a cheap-atomics part, and like an
//!    oversubscribed grid each select the method the model says they
//!    should, end-to-end through the real executor.

use blocksync::core::{AutoTuner, GlobalBuffer, SyncMethod, TreeLevels};
use blocksync::core::{BlockCtx, GridConfig, GridExecutor, RoundKernel};
use blocksync::device::CalibrationProfile;
use blocksync::model;
use proptest::prelude::*;

/// A random-but-plausible calibration: every primitive cost is varied over
/// an order of magnitude around hardware-shaped defaults.
fn profile(atomic: u64, read_latency: u64, poll_gap: u64, store_vis: u64) -> CalibrationProfile {
    let mut cal = CalibrationProfile::gtx280();
    cal.atomic_add_ns = atomic;
    cal.mem_read_latency_ns = read_latency;
    cal.poll_gap_ns = poll_gap;
    cal.write_visibility_ns = store_vis;
    cal
}

/// The tuned 2-level tree group size the decision table carries for `cal`.
fn tuned_group(cal: &CalibrationProfile, n: usize) -> usize {
    AutoTuner::with_profile(cal.clone())
        .decide(n, n)
        .table
        .iter()
        .find_map(|p| match p.method {
            SyncMethod::GpuTree(TreeLevels::Custom(g)) => Some(g),
            _ => None,
        })
        .expect("the decision table always carries a tuned tree row")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tuner's tree fan-out is the brute-force argmin of the grouped
    /// Eq. 7 cost over all valid group sizes, for any calibration.
    #[test]
    fn tuned_fanout_is_the_brute_force_argmin(
        atomic in 1u64..500,
        read_latency in 1u64..500,
        poll_gap in 1u64..80,
        store_vis in 1u64..200,
        n in 2usize..=64,
    ) {
        let cal = profile(atomic, read_latency, poll_gap, store_vis);
        let t_a = cal.atomic_add_ns as f64;
        let t_c = cal.poll_round_trip().as_nanos() as f64;
        let g = tuned_group(&cal, n);
        prop_assert_eq!(g, model::optimal_tree_group(n, t_a, t_c, t_c));
        let cost = model::t_gts_grouped(n, g, t_a, t_c, t_c);
        for candidate in 1..=n {
            prop_assert!(
                cost <= model::t_gts_grouped(n, candidate, t_a, t_c, t_c),
                "group {} (cost {}) beaten by group {} at n={}",
                g, cost, candidate, n
            );
        }
    }

    /// Whatever `Auto` picks at large `N` is predicted no worse than the
    /// paper's headline method (GPU lock-free) — and in fact no worse than
    /// every row of its own prediction table.
    #[test]
    fn auto_never_predicted_worse_than_lock_free(
        atomic in 1u64..500,
        read_latency in 1u64..500,
        poll_gap in 1u64..80,
        store_vis in 1u64..200,
        n in 32usize..=512,
    ) {
        let cal = profile(atomic, read_latency, poll_gap, store_vis);
        let decision = AutoTuner::with_profile(cal).decide(n, n);
        let lock_free = decision
            .table
            .iter()
            .find(|p| p.method == SyncMethod::GpuLockFree)
            .expect("lock-free is always a candidate");
        prop_assert!(decision.predicted_sync_ns <= lock_free.predicted_sync_ns);
        for row in decision.table.iter().filter(|p| p.eligible) {
            prop_assert!(
                decision.predicted_sync_ns <= row.predicted_sync_ns,
                "auto chose {} ({} ns) but {} is cheaper ({} ns)",
                decision.chosen, decision.predicted_sync_ns,
                row.method, row.predicted_sync_ns
            );
        }
    }
}

/// Each round, every block increments its slot; a correct barrier makes
/// every slot equal the round count.
struct CountKernel {
    slots: GlobalBuffer<u32>,
    rounds: usize,
}

impl RoundKernel for CountKernel {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, _round: usize) {
        let b = ctx.block_id;
        self.slots.set(b, self.slots.get(b) + 1);
    }
}

/// Three distinct calibration regimes must select three distinct,
/// model-optimal methods (the tentpole acceptance criterion).
#[test]
fn distinct_profiles_select_distinct_optimal_methods() {
    // 1. GTX 280 at full persistent occupancy: slow atomics make the
    //    lock-free design the paper's (and the model's) winner.
    let gtx = AutoTuner::with_profile(CalibrationProfile::gtx280()).decide(30, 30);
    assert_eq!(gtx.chosen, SyncMethod::GpuLockFree);

    // 2. Cheap atomics (Fermi-style L2 atomics) at a small grid: one
    //    contended counter is cheaper than the lock-free store/poll chain.
    let mut cheap = CalibrationProfile::gtx280();
    cheap.atomic_add_ns = 5;
    let cheap = AutoTuner::with_profile(cheap).decide(8, 30);
    assert_eq!(cheap.chosen, SyncMethod::GpuSimple);

    // 3. Oversubscribed grid: GPU-side barriers stay in the running (they
    //    can park past the SM count) but carry the park/wake wave penalty;
    //    on the GTX 280 profile the CPU relaunch mode still wins.
    let over = AutoTuner::with_profile(CalibrationProfile::gtx280()).decide(64, 30);
    assert_eq!(over.chosen, SyncMethod::CpuImplicit);
    assert!(over
        .table
        .iter()
        .filter(|p| p.method.is_gpu_side())
        .all(|p| p.eligible && p.oversubscribed));

    // In every regime the choice is the cheapest eligible row.
    for d in [&gtx, &cheap, &over] {
        let best = d
            .table
            .iter()
            .filter(|p| p.eligible)
            .map(|p| p.predicted_sync_ns)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(d.predicted_sync_ns, best);
    }
}

/// `Auto` runs end-to-end on the real executor, produces correct results,
/// and records the decision it made.
#[test]
fn auto_executes_correctly_and_records_the_decision() {
    let n_blocks = 6;
    let rounds = 200;
    let kernel = CountKernel {
        slots: GlobalBuffer::new(n_blocks),
        rounds,
    };
    let stats = GridExecutor::new(GridConfig::new(n_blocks, 64), SyncMethod::Auto)
        .run(&kernel)
        .unwrap();
    assert!(kernel.slots.to_vec().iter().all(|&v| v == rounds as u32));
    let decision = stats.auto.as_ref().expect("auto run records its decision");
    assert_eq!(stats.method, format!("auto:{}", decision.chosen));
    assert!(decision.predicted_sync_ns > 0.0);
    assert!(decision.measured_sync_ns.is_some());
    assert!(decision.misprediction_ratio().unwrap() > 0.0);
}
