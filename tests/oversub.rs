//! Oversubscription integration tests: every Park-capable barrier method
//! must complete — and compute bit-identical results — when the grid has
//! more blocks than the host has cores (2x, 4x, 16x), under both the
//! scoped executor and the pooled runtime. Without parking this regime is
//! exactly the deadlock the paper's one-block-per-SM rule exists to avoid;
//! with `SpinStrategy::Park` every wait is bounded, so stalled waves yield
//! the CPU and the grid drains in waves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use blocksync::core::{
    BlockCtx, GlobalBuffer, GridConfig, GridExecutor, GridRuntime, RoundKernel, RuntimeKind,
    SpinStrategy, SyncMethod, SyncPolicy, TreeLevels,
};

/// The barrier methods that run a persistent grid (and therefore must
/// park to survive oversubscription). CPU-side methods relaunch per round
/// and are immune by construction.
const PARK_CAPABLE: [SyncMethod; 6] = [
    SyncMethod::GpuSimple,
    SyncMethod::GpuTree(TreeLevels::Two),
    SyncMethod::GpuTree(TreeLevels::Three),
    SyncMethod::GpuLockFree,
    SyncMethod::SenseReversing,
    SyncMethod::Dissemination,
];

/// Grid-dependent kernel: round r's value in every slot depends on ALL
/// blocks' round r-1 values (min over the grid, plus a block-salted term),
/// so any missed or misordered barrier round changes the output. Two
/// physical rounds per logical step (read phase, publish phase).
struct MinMix {
    slots: GlobalBuffer<u64>,
    scratch: GlobalBuffer<u64>,
    rounds: usize,
}

impl MinMix {
    fn new(n: usize, logical: usize) -> Self {
        MinMix {
            slots: GlobalBuffer::new(n),
            scratch: GlobalBuffer::new(n),
            rounds: logical * 2,
        }
    }
}

impl RoundKernel for MinMix {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, round: usize) {
        let b = ctx.block_id;
        if round.is_multiple_of(2) {
            let min = (0..ctx.n_blocks)
                .map(|i| self.slots.get(i))
                .min()
                .expect("non-empty grid");
            self.scratch.set(b, min + 1 + (b as u64 % 3));
        } else {
            self.slots.set(b, self.scratch.get(b));
        }
    }
}

/// Sequential reference for [`MinMix`]: what the grid must compute.
fn minmix_reference(n: usize, logical: usize) -> Vec<u64> {
    let mut slots = vec![0u64; n];
    for _ in 0..logical {
        let min = *slots.iter().min().expect("non-empty grid");
        for (b, s) in slots.iter_mut().enumerate() {
            *s = min + 1 + (b as u64 % 3);
        }
    }
    slots
}

fn park_policy() -> SyncPolicy {
    // A generous timeout keeps a genuine deadlock from hanging CI while
    // staying far above any legitimate parked wait.
    SyncPolicy::with_timeout(Duration::from_secs(60)).with_spin(SpinStrategy::park())
}

fn oversub_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4)
        .min(8);
    vec![2 * cores, 4 * cores, 16 * cores]
}

#[test]
fn every_park_capable_method_is_bit_identical_oversubscribed_scoped() {
    let logical = 6;
    for n in oversub_counts() {
        let expected = minmix_reference(n, logical);
        for method in PARK_CAPABLE {
            let k = MinMix::new(n, logical);
            let cfg = GridConfig::new(n, 16)
                .with_spec(big_spec(n))
                .with_policy(park_policy());
            let stats = GridExecutor::new(cfg, method)
                .run(&k)
                .unwrap_or_else(|e| panic!("{method} at {n} blocks (scoped): {e}"));
            assert_eq!(stats.n_blocks, n);
            assert_eq!(
                k.slots.to_vec(),
                expected,
                "{method} at {n} blocks (scoped) diverged"
            );
        }
    }
}

#[test]
fn every_park_capable_method_is_bit_identical_oversubscribed_pooled() {
    let logical = 4;
    // One (largest) count for the pooled lane: pool spin-up is costlier,
    // and the scoped test already sweeps the full ladder.
    let n = *oversub_counts().last().expect("non-empty ladder");
    let expected = minmix_reference(n, logical);
    for method in PARK_CAPABLE {
        let k = MinMix::new(n, logical);
        let cfg = GridConfig::new(n, 16)
            .with_spec(big_spec(n))
            .with_policy(park_policy())
            .with_runtime(RuntimeKind::Pooled);
        let rt = GridRuntime::new(cfg, method)
            .unwrap_or_else(|e| panic!("{method} at {n} blocks (pooled): {e}"));
        let stats = rt
            .run(&k)
            .unwrap_or_else(|e| panic!("{method} at {n} blocks (pooled): {e}"));
        assert_eq!(stats.n_blocks, n);
        assert_eq!(
            k.slots.to_vec(),
            expected,
            "{method} at {n} blocks (pooled) diverged"
        );
    }
}

#[test]
fn parking_lifts_the_device_ceiling_too() {
    // 64 blocks on the default 30-SM GTX 280 spec: rejected for a spinning
    // policy, admitted and correct for a parking one — the host-side
    // mirror of `GpuSpec::validate_persistent_launch_with_parking`.
    let logical = 3;
    let n = 64;
    let expected = minmix_reference(n, logical);
    let spin = GridExecutor::new(GridConfig::new(n, 16), SyncMethod::GpuLockFree)
        .run(&MinMix::new(n, logical));
    assert!(
        spin.is_err(),
        "spinning policy must reject 64 blocks on 30 SMs"
    );
    let k = MinMix::new(n, logical);
    let cfg = GridConfig::new(n, 16).with_policy(park_policy());
    GridExecutor::new(cfg, SyncMethod::GpuLockFree)
        .run(&k)
        .expect("parking policy admits and completes the grid");
    assert_eq!(k.slots.to_vec(), expected);
}

#[test]
fn faults_at_oversubscription_still_produce_stuck_diagnostics() {
    // An abandoned block in a 2x-cores parked grid must surface the same
    // structured timeout diagnostic a resident grid produces — parking
    // must not swallow poisoning or the straggler analysis.
    use blocksync::core::{BarrierShared, GpuLockFreeSync, SyncFault};
    use std::sync::Arc;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4)
        .min(8);
    let n = 2 * cores;
    let policy =
        SyncPolicy::with_timeout(Duration::from_millis(200)).with_spin(SpinStrategy::park());
    let shared = Arc::new(GpuLockFreeSync::with_policy(n, policy));
    // Every block but the last arrives; the wait must time out with a
    // diagnostic naming the straggler.
    let fault = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n - 1)
            .map(|b| {
                let sh = Arc::clone(&shared);
                s.spawn(move || sh.waiter(b).wait())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .find_map(|r| r.err())
    })
    .expect("some waiter must fault");
    match fault {
        SyncFault::TimedOut { diagnostic } => {
            assert!(
                diagnostic.stragglers().contains(&(n - 1)),
                "diagnostic must name the absent block: {diagnostic:?}"
            );
        }
        SyncFault::Poisoned { cause, .. } => {
            // Peers that observed the first timeout's poison report it.
            assert_eq!(cause, blocksync::core::PoisonCause::Timeout);
        }
    }
}

/// The pooled fault matrix at 4x oversubscription (run as its own tier-1
/// CI step): every park-capable method converts an injected panic in a
/// parked, oversubscribed pooled grid into a structured error naming the
/// block and round, and the same pool then runs a clean kernel correctly.
#[test]
fn pooled_fault_matrix_at_four_x_oversubscription() {
    use blocksync::core::{ExecError, FaultInjector, FaultPlan};
    use std::time::Instant;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4)
        .min(8);
    let n = 4 * cores;
    let logical = 3;
    let expected = minmix_reference(n, logical);
    for method in PARK_CAPABLE {
        let cfg = GridConfig::new(n, 8)
            .with_spec(big_spec(n))
            .with_policy(
                SyncPolicy::with_timeout(Duration::from_secs(20)).with_spin(SpinStrategy::park()),
            )
            .with_runtime(RuntimeKind::Pooled);
        let exec = GridExecutor::new(cfg, method);
        let k = FaultInjector::new(MinMix::new(n, logical), FaultPlan::panic_at(n - 1, 2));
        let started = Instant::now();
        let err = exec.run(&k).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "{method}: detection too slow at {n} blocks"
        );
        assert!(
            matches!(
                err,
                ExecError::BlockPanicked { block, round, .. }
                    if block == n - 1 && round == 2
            ),
            "{method} at {n} blocks: got {err:?}"
        );
        // Same executor, same healed pool, still oversubscribed: a clean
        // kernel must complete bit-identical to the reference.
        let clean = MinMix::new(n, logical);
        let stats = exec
            .run(&clean)
            .unwrap_or_else(|e| panic!("{method} post-fault at {n} blocks: {e}"));
        assert!(
            stats.pool.is_some(),
            "{method}: recovery run did not go through the pool"
        );
        assert_eq!(
            clean.slots.to_vec(),
            expected,
            "{method}: lost work after pool recovery at {n} blocks"
        );
    }
}

/// A device spec large enough that the *host core count*, not the
/// simulated SM count, is the binding constraint — the tests above are
/// about OS-level oversubscription.
fn big_spec(n_blocks: usize) -> blocksync::device::GpuSpec {
    blocksync::device::GpuSpec::gtx280_scaled(n_blocks.max(30) as u32)
}

/// The counter-based harness from the core crate, replayed at
/// oversubscription: per-round arrival counts must match exactly (no lost
/// or duplicated rounds) even when every wait may park.
#[test]
fn round_counts_are_exact_at_sixteen_x() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4)
        .min(8);
    let n = 16 * cores;
    let rounds = 30usize;
    let counter = AtomicU64::new(0);
    let k = (rounds, |_ctx: &BlockCtx, _round: usize| {
        counter.fetch_add(1, Ordering::Relaxed);
    });
    let cfg = GridConfig::new(n, 16)
        .with_spec(big_spec(n))
        .with_policy(park_policy());
    GridExecutor::new(cfg, SyncMethod::GpuSimple)
        .run(&k)
        .expect("parked grid completes");
    assert_eq!(counter.load(Ordering::Relaxed), (n * rounds) as u64);
}
