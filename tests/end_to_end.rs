//! Cross-crate integration tests: the three applications, executed on the
//! host runtime under every synchronization method, verified against their
//! sequential references; and host/simulator structural agreement.

use blocksync::algos::bitonic::{bitonic_sort, GridBitonic};
use blocksync::algos::fft::{fft_inplace, kernel::Direction, reference::max_error, GridFft};
use blocksync::algos::seqgen::{complex_signal, dna_sequence, random_keys};
use blocksync::algos::swat::{smith_waterman, GapPenalties, GridSwat, Scoring};
use blocksync::core::{GridConfig, GridExecutor, RoundKernel, SyncMethod};
use blocksync::microbench::micro_workload;
use blocksync::sim::{simulate, SimConfig, Workload};

const ALL_METHODS: [SyncMethod; 8] = [
    SyncMethod::CpuExplicit,
    SyncMethod::CpuImplicit,
    SyncMethod::GpuSimple,
    SyncMethod::GpuTree(blocksync::core::TreeLevels::Two),
    SyncMethod::GpuTree(blocksync::core::TreeLevels::Three),
    SyncMethod::GpuLockFree,
    SyncMethod::SenseReversing,
    SyncMethod::Dissemination,
];

fn execute<K: RoundKernel>(kernel: &K, n_blocks: usize, method: SyncMethod) {
    GridExecutor::new(GridConfig::new(n_blocks, 32), method)
        .run(kernel)
        .expect("valid configuration");
}

#[test]
fn fft_all_methods_match_reference() {
    let input = complex_signal(1024, 2026);
    let mut expected = input.clone();
    fft_inplace(&mut expected);
    for method in ALL_METHODS {
        let k = GridFft::new(&input, Direction::Forward);
        execute(&k, 7, method);
        assert!(max_error(&k.output(), &expected) < 1e-3, "{method}");
    }
}

#[test]
fn swat_all_methods_match_reference() {
    let a = dna_sequence(150, 1);
    let b = dna_sequence(170, 2);
    let expected = smith_waterman(&a, &b, Scoring::dna(), GapPenalties::dna());
    for method in ALL_METHODS {
        let k = GridSwat::new(&a, &b, Scoring::dna(), GapPenalties::dna(), 5);
        execute(&k, 5, method);
        let got = k.result();
        assert_eq!(got.score, expected.score, "{method}");
        assert_eq!(got.end, expected.end, "{method}");
    }
}

#[test]
fn bitonic_all_methods_match_reference() {
    let keys = random_keys(2048, 3);
    let mut expected = keys.clone();
    bitonic_sort(&mut expected);
    for method in ALL_METHODS {
        let k = GridBitonic::new(&keys);
        execute(&k, 6, method);
        assert_eq!(k.output(), expected, "{method}");
    }
}

#[test]
fn host_and_simulator_agree_on_round_structure() {
    // The simulator workloads must mirror the host kernels' round counts.
    use blocksync::algos::{bitonic::BitonicWorkload, fft::FftWorkload, swat::SwatWorkload};
    use blocksync::device::GpuSpec;
    let spec = GpuSpec::gtx280();

    let k = GridFft::new(&complex_signal(1 << 10, 0), Direction::Forward);
    let w = FftWorkload::new(&spec, 1 << 10, 8);
    assert_eq!(k.rounds(), w.rounds());

    let k = GridSwat::new(
        &dna_sequence(64, 0),
        &dna_sequence(80, 1),
        Scoring::dna(),
        GapPenalties::dna(),
        8,
    );
    let w = SwatWorkload::new(&spec, 64, 80, 8);
    assert_eq!(k.rounds(), w.rounds());

    let k = GridBitonic::new(&random_keys(1 << 9, 0));
    let w = BitonicWorkload::new(&spec, 1 << 9, 8);
    assert_eq!(k.rounds(), w.rounds());
}

#[test]
fn one_block_per_sm_rule_enforced_everywhere() {
    // Host runtime:
    let k = GridBitonic::new(&random_keys(64, 0));
    let err = GridExecutor::new(GridConfig::new(31, 32), SyncMethod::GpuSimple).run(&k);
    assert!(
        err.is_err(),
        "host runtime must reject 31 persistent blocks"
    );
    // Simulator:
    let w = micro_workload(&blocksync::device::GpuSpec::gtx280(), 64, 5);
    let r =
        std::panic::catch_unwind(|| simulate(&SimConfig::new(31, 64, SyncMethod::GpuLockFree), &w));
    assert!(r.is_err(), "simulator must reject 31 persistent blocks");
    // CPU sync has no such limit in either.
    let k = GridBitonic::new(&random_keys(64, 0));
    assert!(
        GridExecutor::new(GridConfig::new(31, 32), SyncMethod::CpuImplicit)
            .run(&k)
            .is_ok()
    );
    let _ = simulate(&SimConfig::new(31, 64, SyncMethod::CpuImplicit), &w);
}

#[test]
fn simulated_paper_orderings_hold_end_to_end() {
    // The central claims, one sweep each, through the public facade.
    let w = micro_workload(&blocksync::device::GpuSpec::gtx280(), 256, 300);
    let sync = |m: SyncMethod, n: usize| {
        simulate(&SimConfig::new(n, 256, m), &w)
            .sync_per_round()
            .as_nanos()
    };
    // Lock-free beats everything at 30 blocks.
    let lf = sync(SyncMethod::GpuLockFree, 30);
    for m in [
        SyncMethod::CpuExplicit,
        SyncMethod::CpuImplicit,
        SyncMethod::GpuSimple,
        SyncMethod::GpuTree(blocksync::core::TreeLevels::Two),
        SyncMethod::GpuTree(blocksync::core::TreeLevels::Three),
    ] {
        assert!(lf < sync(m, 30), "lock-free must win at 30 blocks vs {m}");
    }
    // Simple sync beats CPU implicit at small N, loses at 30 (crossover).
    assert!(sync(SyncMethod::GpuSimple, 4) < sync(SyncMethod::CpuImplicit, 4));
    assert!(sync(SyncMethod::GpuSimple, 30) > sync(SyncMethod::CpuImplicit, 30));
    // Weak-scaling compute is method-independent; totals differ only by sync.
    let w1 = w.compute(0, 0);
    let w2 = w.compute(29, 299);
    assert_eq!(w1, w2);
}
