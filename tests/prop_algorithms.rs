//! Property-based tests of the three applications: for arbitrary inputs,
//! the grid kernels must agree with their sequential references under any
//! block count and any barrier.

use blocksync::algos::bitonic::GridBitonic;
use blocksync::algos::fft::{dft_naive, kernel::Direction, reference::max_error, GridFft};
use blocksync::algos::swat::{smith_waterman, GapPenalties, GridSwat, Scoring};
use blocksync::core::{GridConfig, GridExecutor, RoundKernel, SyncMethod, TreeLevels};
use proptest::prelude::*;

fn method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        Just(SyncMethod::CpuImplicit),
        Just(SyncMethod::GpuSimple),
        Just(SyncMethod::GpuTree(TreeLevels::Two)),
        Just(SyncMethod::GpuLockFree),
    ]
}

fn execute<K: RoundKernel>(kernel: &K, n_blocks: usize, method: SyncMethod) {
    GridExecutor::new(GridConfig::new(n_blocks, 32), method)
        .run(kernel)
        .expect("valid configuration");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bitonic_sorts_anything(
        log_n in 0u32..10,
        seedless_keys in proptest::collection::vec(any::<u32>(), 1..=1024),
        n_blocks in 1usize..7,
        method in method_strategy(),
    ) {
        // Truncate/pad to 2^log_n.
        let n = 1usize << log_n;
        let mut keys = seedless_keys;
        keys.resize(n, 0xDEAD_BEEF);
        let kernel = GridBitonic::new(&keys);
        execute(&kernel, n_blocks, method);
        let out = kernel.output();
        // Sorted...
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // ...and a permutation of the input (multiset equality).
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn fft_matches_naive_dft_for_random_signals(
        log_n in 1u32..8,
        seed in any::<u64>(),
        n_blocks in 1usize..7,
        method in method_strategy(),
    ) {
        let n = 1usize << log_n;
        let input = blocksync::algos::seqgen::complex_signal(n, seed);
        let kernel = GridFft::new(&input, Direction::Forward);
        execute(&kernel, n_blocks, method);
        let expected = dft_naive(&input);
        let err = max_error(&kernel.output(), &expected);
        prop_assert!(err < 1e-2 * n as f32, "err {err}");
    }

    #[test]
    fn fft_inverse_round_trips(
        log_n in 1u32..9,
        seed in any::<u64>(),
        n_blocks in 1usize..5,
    ) {
        let n = 1usize << log_n;
        let input = blocksync::algos::seqgen::complex_signal(n, seed);
        let fwd = GridFft::new(&input, Direction::Forward);
        execute(&fwd, n_blocks, SyncMethod::GpuLockFree);
        let inv = GridFft::new(&fwd.output(), Direction::Inverse);
        execute(&inv, n_blocks, SyncMethod::GpuLockFree);
        prop_assert!(max_error(&inv.output(), &input) < 1e-3);
    }

    #[test]
    fn parseval_energy_is_preserved(
        log_n in 2u32..9,
        seed in any::<u64>(),
    ) {
        // sum |x|^2 = (1/n) sum |X|^2 — an FFT invariant independent of
        // the reference implementation.
        let n = 1usize << log_n;
        let input = blocksync::algos::seqgen::complex_signal(n, seed);
        let kernel = GridFft::new(&input, Direction::Forward);
        execute(&kernel, 4, SyncMethod::GpuLockFree);
        let time_energy: f32 = input.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f32 =
            kernel.output().iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        let rel = (time_energy - freq_energy).abs() / time_energy.max(1e-6);
        prop_assert!(rel < 1e-3, "Parseval violated: {time_energy} vs {freq_energy}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn swat_matches_reference_for_random_inputs(
        la in 1usize..80,
        lb in 1usize..80,
        seed in any::<u64>(),
        n_blocks in 1usize..6,
        method in method_strategy(),
        mat in 1i32..4,
        mis in -3i32..0,
        open in 2i32..8,
        extend in 1i32..3,
    ) {
        let a = blocksync::algos::seqgen::dna_sequence(la, seed);
        let b = blocksync::algos::seqgen::dna_sequence(lb, seed ^ 0xABCD);
        let scoring = Scoring::Simple { r#match: mat, mismatch: mis };
        let gaps = GapPenalties { open, extend };
        let expected = smith_waterman(&a, &b, scoring, gaps);
        let kernel = GridSwat::new(&a, &b, scoring, gaps, n_blocks);
        execute(&kernel, n_blocks, method);
        let got = kernel.result();
        prop_assert_eq!(got.score, expected.score);
        prop_assert_eq!(got.end, expected.end);
    }

    #[test]
    fn swat_score_bounds(
        la in 1usize..60,
        lb in 1usize..60,
        seed in any::<u64>(),
    ) {
        // 0 <= score <= 2 * min(la, lb) for DNA scoring (+2 per match).
        let a = blocksync::algos::seqgen::dna_sequence(la, seed);
        let b = blocksync::algos::seqgen::dna_sequence(lb, seed ^ 1);
        let kernel = GridSwat::new(&a, &b, Scoring::dna(), GapPenalties::dna(), 3);
        execute(&kernel, 3, SyncMethod::GpuLockFree);
        let score = kernel.result().score;
        prop_assert!(score >= 0);
        prop_assert!(score <= 2 * la.min(lb) as i32);
    }
}
