//! Integration tests of the observability plane (`blocksync_core::obs`):
//! the cross-launch metrics registry fed by the pooled runtime and the
//! launch engine, and the crash-dump flight recorder wired through the
//! chaos harness.
//!
//! The load-bearing property is **ground truth**: the registry is fed the
//! exact same `wall` measurement that lands in each launch's
//! [`KernelStats`], so a histogram rebuilt from the per-launch stats must
//! equal the registry's histogram bit-for-bit — same buckets, same
//! percentiles, same min/max.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use blocksync::core::{
    BlockCtx, ChaosConfig, EventRecorder, GlobalBuffer, GridConfig, GridExecutor, GridRuntime,
    Histogram, LaunchOutcome, LaunchRecord, MetricsSnapshot, Observer, RoundKernel, RuntimeKind,
    SyncMethod,
};
use blocksync::microbench::MeanKernel;
use proptest::prelude::*;

/// Pipelined pooled launches; returns the per-launch stats (ground truth)
/// and the pool's end-of-run snapshot.
fn pooled_soak(
    launches: usize,
    window: usize,
    method: SyncMethod,
) -> (Vec<blocksync::core::KernelStats>, MetricsSnapshot) {
    let (blocks, tpb, rounds) = (4, 16, 60);
    let cfg = GridConfig::new(blocks, tpb).with_runtime(RuntimeKind::Pooled);
    let rt = GridRuntime::new(cfg, method).expect("pool-capable method");
    let mut inflight = VecDeque::new();
    let mut stats = Vec::with_capacity(launches);
    for _ in 0..launches {
        let kernel = Arc::new(MeanKernel::for_grid(blocks, tpb, rounds));
        inflight.push_back(rt.submit(kernel).expect("submit"));
        if inflight.len() >= window {
            let h = inflight.pop_front().expect("nonempty");
            stats.push(h.wait().expect("clean launch"));
        }
    }
    while let Some(h) = inflight.pop_front() {
        stats.push(h.wait().expect("clean launch"));
    }
    let snapshot = rt.observer().snapshot();
    (stats, snapshot)
}

/// The acceptance bar of the plane: after a pooled pipelined run, the
/// registry's latency histogram and counters must match what the
/// per-launch `KernelStats` say happened — exactly, not approximately.
#[test]
fn pooled_registry_matches_per_launch_stats_ground_truth() {
    let launches = 12;
    let (stats, snap) = pooled_soak(launches, 3, SyncMethod::GpuLockFree);
    assert_eq!(stats.len(), launches);

    // Counters against ground truth: every launch succeeded, exactly one
    // (the first) was cold.
    assert_eq!(snap.counters["launches_total"], launches as u64);
    assert_eq!(snap.counters["launches_failed_total"], 0);
    assert_eq!(snap.counters["launches_cold_total"], 1);
    assert_eq!(snap.counters["launches_warm_total"], launches as u64 - 1);
    assert!(!snap.labeled.contains_key("launch_failures_total"));
    assert!(!snap.labeled.contains_key("launch_fallbacks_total"));
    // queue_depth is a labeled gauge family keyed by shard; a standalone
    // runtime reports under the reserved "default" shard label.
    assert!(!snap.gauges.contains_key("queue_depth"));
    assert!(snap.labeled_gauges["queue_depth"].contains_key(blocksync::core::DEFAULT_SHARD));

    // The submit→stats histogram is fed the same `wall` value the stats
    // carry, so a reference histogram rebuilt from the stats is identical:
    // same p50/p99, same count/sum/min/max, same buckets.
    let mut reference = Histogram::new();
    for s in &stats {
        assert!(s.pool.as_deref().is_some_and(|p| p.ran_pooled()));
        reference.record(u64::try_from(s.wall.as_nanos()).unwrap());
    }
    let got = &snap.histograms["submit_to_stats_ns/gpu-lock-free"];
    assert_eq!(got.percentile(0.50), reference.percentile(0.50));
    assert_eq!(got.percentile(0.99), reference.percentile(0.99));
    assert_eq!(got, &reference);

    // Queueing and launch-overhead histograms sampled once per launch.
    assert_eq!(snap.histograms["queued_ns"].count(), launches as u64);
    assert_eq!(snap.histograms["launch_ns"].count(), launches as u64);

    // Prometheus rendering of the same snapshot carries the ground-truth
    // quantiles verbatim.
    let prom = snap.render_prometheus();
    assert!(
        prom.contains(&format!(
            "blocksync_submit_to_stats_ns{{method=\"gpu-lock-free\",quantile=\"0.99\"}} {}",
            reference.percentile(0.99)
        )),
        "{prom}"
    );
    assert!(
        prom.contains(&format!("blocksync_launches_total {launches}")),
        "{prom}"
    );
}

struct Bump(GlobalBuffer<u64>);
impl RoundKernel for Bump {
    fn rounds(&self) -> usize {
        3
    }
    fn round(&self, ctx: &BlockCtx, _round: usize) {
        self.0.set(ctx.block_id, self.0.get(ctx.block_id) + 1);
    }
}

/// Scoped fallbacks land in the shared registry as a labeled counter so a
/// fleet of "pooled" launches that silently ran scoped is visible.
#[test]
fn scoped_fallbacks_are_counted_by_reason() {
    let cfg = GridConfig::new(2, 8).with_runtime(RuntimeKind::Pooled);
    // cpu-explicit cannot be pooled: every run falls back, with a reason.
    let exec = GridExecutor::new(cfg, SyncMethod::CpuExplicit);
    for _ in 0..3 {
        exec.run(&Bump(GlobalBuffer::new(2))).unwrap();
    }
    let snap = exec.observer().snapshot();
    assert_eq!(snap.counters["launches_total"], 3);
    assert_eq!(snap.counters["launches_failed_total"], 0);
    let reasons = &snap.labeled["launch_fallbacks_total"];
    assert_eq!(reasons.values().sum::<u64>(), 3);
    assert!(
        reasons.keys().all(|r| r.contains("cpu-explicit")),
        "{reasons:?}"
    );
}

struct PanicKernel;
impl RoundKernel for PanicKernel {
    fn rounds(&self) -> usize {
        3
    }
    fn round(&self, ctx: &BlockCtx, round: usize) {
        if ctx.block_id == 1 && round == 1 {
            panic!("injected fault: obs test");
        }
    }
}

/// Failures increment both the plain failure counter and the by-kind
/// labeled counter with the error's stable class label.
#[test]
fn failures_are_counted_by_kind() {
    let exec = GridExecutor::new(GridConfig::new(2, 8), SyncMethod::GpuLockFree);
    exec.run(&PanicKernel).unwrap_err();
    exec.run(&Bump(GlobalBuffer::new(2))).unwrap();
    let snap = exec.observer().snapshot();
    assert_eq!(snap.counters["launches_total"], 2);
    assert_eq!(snap.counters["launches_failed_total"], 1);
    assert_eq!(snap.labeled["launch_failures_total"]["panic"], 1);
    // The flight recorder kept the failure.
    let failure = exec.observer().last_failure().expect("recorded");
    assert!(failure.outcome.is_failure());
    assert_eq!(failure.method, "gpu-lock-free");
}

/// An injected chaos failure yields a postmortem JSON artifact carrying
/// the fault schedule, the failure class, and (when the trace plane is
/// compiled in) recent trace events; timeouts also embed the full stuck
/// diagnostic.
#[test]
fn chaos_failures_dump_replayable_postmortems() {
    let dir = std::env::temp_dir().join("blocksync-obs-postmortems");
    let _ = std::fs::remove_dir_all(&dir);
    let report = ChaosConfig {
        launches: 24,
        fault_rate: 0.4,
        rounds: 6,
        timeout: Duration::from_millis(80),
        postmortem_dir: Some(dir.clone()),
        ..ChaosConfig::default()
    }
    .run()
    .unwrap();
    assert!(report.passed(), "{report}");
    let failed: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.error.is_some())
        .collect();
    assert!(!failed.is_empty(), "seed 42 at 40% must fail some launches");
    let mut saw_diagnostic = false;
    let mut saw_events = false;
    for o in &failed {
        let path = dir.join(format!(
            "postmortem-seed{}-launch{:04}.json",
            report.seed, o.index
        ));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(text.contains("\"outcome\": \"failure\""), "{text}");
        assert!(text.contains("\"fault_schedule\": ["), "{text}");
        assert!(text.contains("\"error_kind\""), "{text}");
        // Each scheduled fault shows up as a structured line.
        assert!(!o.faults.is_empty());
        saw_diagnostic |= text.contains("\"diagnostic\": {");
        saw_events |= text.contains("\"recent_events\": [\"");
    }
    assert!(
        saw_diagnostic,
        "at least one timeout failure must embed a StuckDiagnostic"
    );
    if EventRecorder::ENABLED {
        assert!(
            saw_events,
            "postmortem-dir enables tracing, so failures must carry events"
        );
    }
    // The report-level metrics snapshot agrees with the outcome lines.
    let metrics = report.metrics.as_ref().expect("pooled soak snapshots");
    assert_eq!(
        metrics.counters["launches_failed_total"],
        failed.len() as u64
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: `queue_depth` was a single global gauge, so two shards
/// feeding one shared observer clobbered each other's depth — the last
/// writer won and per-shard backlog was invisible. It is now a labeled
/// family keyed by shard, one live gauge per shard, with unlabeled
/// (standalone-runtime) launches reporting under `DEFAULT_SHARD`.
#[test]
fn queue_depth_is_a_per_shard_gauge_family() {
    let obs = Observer::new();
    for (shard, depth) in [
        (None, 1usize),
        (Some("4x8/gpu-lock-free"), 5),
        (Some("3x8/gpu-simple"), 2),
        (Some("4x8/gpu-lock-free"), 3),
    ] {
        let mut r = LaunchRecord::new("gpu-lock-free");
        r.pooled = true;
        r.queue_depth = depth;
        r.shard = shard.map(str::to_string);
        obs.observe(r);
    }
    let snap = obs.snapshot();
    let family = &snap.labeled_gauges["queue_depth"];
    // Three distinct shards, each holding its *own* latest depth: the
    // second lock-free record overwrote only its own label.
    assert_eq!(family[blocksync::core::DEFAULT_SHARD], 1);
    assert_eq!(family["4x8/gpu-lock-free"], 3);
    assert_eq!(family["3x8/gpu-simple"], 2);
    assert!(!snap.gauges.contains_key("queue_depth"));
    // Shard-labeled launches also feed the per-shard traffic counter;
    // unlabeled ones stay out of it.
    assert_eq!(snap.labeled["shard_launches_total"]["4x8/gpu-lock-free"], 2);
    assert_eq!(snap.labeled["shard_launches_total"]["3x8/gpu-simple"], 1);
    assert!(!snap.labeled["shard_launches_total"].contains_key(blocksync::core::DEFAULT_SHARD));
    // Prometheus renders the family with the shard label and a gauge TYPE.
    let prom = snap.render_prometheus();
    assert!(
        prom.contains("# TYPE blocksync_queue_depth gauge"),
        "{prom}"
    );
    assert!(
        prom.contains("blocksync_queue_depth{shard=\"4x8/gpu-lock-free\"} 3"),
        "{prom}"
    );
    assert!(
        prom.contains("blocksync_queue_depth{shard=\"default\"} 1"),
        "{prom}"
    );
    // And the labeled family survives the JSON round trip.
    let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
    assert_eq!(parsed, snap);
}

/// Build a synthetic registry load through the public observe path.
fn observe_all(records: &[(usize, u64, bool, bool)]) -> MetricsSnapshot {
    const METHODS: [&str; 3] = ["gpu-lock-free", "gpu-simple", "auto:dissemination"];
    const KINDS: [&str; 3] = ["timeout", "panic", "device"];
    let obs = Observer::new();
    for (i, &(sel, wall_ns, failed, fallback)) in records.iter().enumerate() {
        let mut r = LaunchRecord::new(METHODS[sel % METHODS.len()]);
        r.seq = i as u64;
        r.pooled = true;
        r.cold = i == 0;
        r.wall = Duration::from_nanos(wall_ns);
        r.queued = Duration::from_nanos(wall_ns / 3);
        r.queue_depth = sel;
        if failed {
            r.outcome = LaunchOutcome::Failure {
                error: format!("synthetic failure {i}"),
                kind: KINDS[sel % KINDS.len()].to_string(),
                diagnostic: None,
            };
        }
        if fallback {
            r.fallback = Some("relaunches from the host".to_string());
            r.pooled = false;
        }
        obs.observe(r);
    }
    obs.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Histogram::merge` must be indistinguishable from having recorded
    /// the concatenated sample stream into one histogram — including the
    /// raw min/max/sum the snapshot JSON preserves.
    #[test]
    fn histogram_merge_equals_concatenated_stream(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut a = Histogram::new();
        for &v in &xs { a.record(v); }
        let mut b = Histogram::new();
        for &v in &ys { b.record(v); }
        a.merge(&b);
        let mut concat = Histogram::new();
        for &v in xs.iter().chain(ys.iter()) { concat.record(v); }
        prop_assert_eq!(&a, &concat);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.percentile(q), concat.percentile(q));
        }
    }

    /// The snapshot's hand-rolled JSON form is lossless: parsing what
    /// `to_json` wrote reproduces the snapshot exactly, for any mix of
    /// methods, outcomes, fallbacks, and latencies.
    #[test]
    fn metrics_snapshot_json_round_trips(
        records in proptest::collection::vec(
            (0usize..5, any::<u64>(), any::<bool>(), any::<bool>()),
            0..24,
        ),
    ) {
        let snap = observe_all(&records);
        let parsed = MetricsSnapshot::from_json(&snap.to_json());
        prop_assert!(parsed.is_ok(), "parse error: {:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), snap);
    }
}
