//! The analytic model (Section 4) must describe the simulator: the CPU
//! timelines match Eqs. 3–4 exactly, and the Eq. 2 speedup bound predicts
//! the measured application speedups.

use blocksync::core::SyncMethod;
use blocksync::device::{CalibrationProfile, GpuSpec, SimDuration};
use blocksync::microbench::micro_workload;
use blocksync::model;
use blocksync::sim::{simulate, SimConfig, Workload};

#[test]
fn cpu_explicit_matches_eq3_exactly() {
    let cal = CalibrationProfile::gtx280();
    let rounds = 137;
    let w = micro_workload(&GpuSpec::gtx280(), 256, rounds);
    let per_round_compute = w.compute(0, 0).as_nanos() as f64;
    let r = simulate(&SimConfig::new(8, 256, SyncMethod::CpuExplicit), &w);
    let predicted = model::total_explicit_uniform(
        rounds,
        0.0, // launch folded into the explicit round overhead
        per_round_compute,
        cal.explicit_round_overhead_ns as f64,
    );
    assert_eq!(r.total.as_nanos() as f64, predicted);
}

#[test]
fn cpu_implicit_matches_eq4_exactly() {
    let cal = CalibrationProfile::gtx280();
    let rounds = 251;
    let w = micro_workload(&GpuSpec::gtx280(), 256, rounds);
    let per_round_compute = w.compute(0, 0).as_nanos() as f64;
    let r = simulate(&SimConfig::new(8, 256, SyncMethod::CpuImplicit), &w);
    let predicted = model::total_implicit_uniform(
        rounds,
        cal.kernel_launch_ns as f64,
        per_round_compute,
        cal.implicit_round_overhead_ns as f64,
    );
    assert_eq!(r.total.as_nanos() as f64, predicted);
}

#[test]
fn gpu_total_matches_eq5_with_measured_barrier_cost() {
    // Eq. 5 with the *measured* per-round barrier cost reproduces the
    // total (closing the loop between the model and the event engine).
    let cal = CalibrationProfile::gtx280();
    let rounds = 300;
    let w = micro_workload(&GpuSpec::gtx280(), 256, rounds);
    let r = simulate(&SimConfig::new(16, 256, SyncMethod::GpuLockFree), &w);
    let t_gs = r.sync_per_round().as_nanos() as f64;
    let predicted = model::total_gpu_uniform(
        rounds,
        cal.kernel_launch_ns as f64,
        w.compute(0, 0).as_nanos() as f64,
        t_gs,
    );
    let actual = r.total.as_nanos() as f64;
    let rel = (actual - predicted).abs() / actual;
    assert!(rel < 0.01, "Eq. 5 off by {rel}");
}

#[test]
fn eq2_speedup_bound_predicts_application_gains() {
    // For each application: take rho from the CPU-implicit run and the
    // sync speedup from the measured barrier costs; Eq. 2 must predict the
    // measured kernel speedup within a few percent.
    use blocksync::algos::{bitonic::BitonicWorkload, fft::FftWorkload, swat::SwatWorkload};
    let spec = GpuSpec::gtx280();
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        ("fft", Box::new(FftWorkload::new(&spec, 1 << 14, 30))),
        ("swat", Box::new(SwatWorkload::new(&spec, 512, 512, 30))),
        (
            "bitonic",
            Box::new(BitonicWorkload::new(&spec, 1 << 13, 30)),
        ),
    ];
    for (name, w) in workloads {
        let imp = simulate(
            &SimConfig::new(30, 256, SyncMethod::CpuImplicit),
            w.as_ref(),
        );
        let lf = simulate(
            &SimConfig::new(30, 256, SyncMethod::GpuLockFree),
            w.as_ref(),
        );
        let measured_speedup = imp.total.as_nanos() as f64 / lf.total.as_nanos() as f64;

        let rho = imp.compute_reference().as_nanos() as f64 / imp.total.as_nanos() as f64;
        let ss = imp.sync_time().as_nanos() as f64 / lf.sync_time().as_nanos().max(1) as f64;
        let predicted = model::kernel_speedup(rho, ss);

        let rel = (measured_speedup - predicted).abs() / measured_speedup;
        assert!(
            rel < 0.05,
            "{name}: measured {measured_speedup:.3} vs Eq.2 {predicted:.3} (rel {rel:.3})"
        );
        // And the hard ceiling holds.
        assert!(measured_speedup <= model::max_speedup(rho) * 1.01, "{name}");
    }
}

#[test]
fn barrier_free_reference_has_zero_sync() {
    let w = micro_workload(&GpuSpec::gtx280(), 256, 100);
    let r = simulate(&SimConfig::new(12, 256, SyncMethod::NoSync), &w);
    assert_eq!(r.sync_time(), SimDuration::ZERO);
    assert_eq!(r.total, r.compute_reference());
}
