//! Property-based tests of the simulator and the analytic model.

use blocksync::core::{SyncMethod, TreeLevels};
use blocksync::device::SimDuration;
use blocksync::model;
use blocksync::sim::{simulate, ClosureWorkload, ConstWorkload, SimConfig};
use proptest::prelude::*;

fn gpu_method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        Just(SyncMethod::GpuSimple),
        Just(SyncMethod::GpuTree(TreeLevels::Two)),
        Just(SyncMethod::GpuTree(TreeLevels::Three)),
        Just(SyncMethod::GpuLockFree),
        Just(SyncMethod::SenseReversing),
        Just(SyncMethod::Dissemination),
    ]
}

fn any_method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        gpu_method_strategy(),
        Just(SyncMethod::CpuExplicit),
        Just(SyncMethod::CpuImplicit),
        Just(SyncMethod::NoSync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator is bit-for-bit deterministic.
    #[test]
    fn simulation_is_deterministic(
        method in any_method_strategy(),
        n_blocks in 1usize..=30,
        rounds in 0usize..80,
        compute_ns in 0u64..5_000,
    ) {
        let w = ConstWorkload::new(SimDuration::from_nanos(compute_ns), rounds);
        let cfg = SimConfig::new(n_blocks, 64, method);
        let a = simulate(&cfg, &w);
        let b = simulate(&cfg, &w);
        prop_assert_eq!(a.total, b.total);
        prop_assert_eq!(a.per_block_sync, b.per_block_sync);
        prop_assert_eq!(a.per_block_compute, b.per_block_compute);
    }

    /// Accounting sanity: the total at least covers launch + the critical
    /// compute path, and per-block compute matches the workload exactly.
    #[test]
    fn accounting_is_conservative(
        method in any_method_strategy(),
        n_blocks in 1usize..=30,
        rounds in 1usize..60,
        compute_ns in 1u64..5_000,
    ) {
        let w = ConstWorkload::new(SimDuration::from_nanos(compute_ns), rounds);
        let r = simulate(&SimConfig::new(n_blocks, 64, method), &w);
        prop_assert!(r.total >= r.compute_reference() || method == SyncMethod::CpuExplicit,
            "total {:?} < compute ref {:?}", r.total, r.compute_reference());
        for c in &r.per_block_compute {
            prop_assert_eq!(c.as_nanos(), compute_ns * rounds as u64);
        }
    }

    /// Stragglers transfer their skew into other blocks' sync time; the
    /// kernel can never finish before the straggler's own compute path.
    #[test]
    fn straggler_dominates_total(
        method in gpu_method_strategy(),
        n_blocks in 2usize..10,
        rounds in 1usize..40,
        slow_ns in 2_000u64..20_000,
    ) {
        let w = ClosureWorkload::new(rounds, move |bid, _| {
            SimDuration::from_nanos(if bid == 0 { slow_ns } else { 100 })
        });
        let r = simulate(&SimConfig::new(n_blocks, 64, method), &w);
        prop_assert!(r.total >= SimDuration::from_nanos(slow_ns * rounds as u64));
    }

    /// More barrier rounds never make the kernel faster.
    #[test]
    fn total_time_is_monotone_in_rounds(
        method in any_method_strategy(),
        n_blocks in 1usize..=30,
        rounds in 1usize..40,
    ) {
        let w1 = ConstWorkload::from_micros(0.3, rounds);
        let w2 = ConstWorkload::from_micros(0.3, rounds + 1);
        let cfg = SimConfig::new(n_blocks, 64, method);
        prop_assert!(simulate(&cfg, &w2).total >= simulate(&cfg, &w1).total);
    }

    /// Trace invariants: per block, events alternate
    /// compute -> arrive -> release (same round), ending in KernelDone;
    /// timestamps are globally non-decreasing.
    #[test]
    fn trace_is_well_formed(
        method in gpu_method_strategy(),
        n_blocks in 1usize..10,
        rounds in 1usize..20,
    ) {
        use blocksync::sim::TraceKind;
        let w = ConstWorkload::from_micros(0.4, rounds);
        let cfg = {
            let mut c = SimConfig::new(n_blocks, 64, method);
            c.trace = true;
            c
        };
        let r = simulate(&cfg, &w);
        prop_assert!(r.trace.windows(2).all(|w| w[0].time <= w[1].time));
        for b in 0..n_blocks {
            let evs: Vec<_> = r.trace.iter().filter(|e| e.block == b).collect();
            prop_assert_eq!(evs.len(), 3 * rounds + 1);
            for (rr, chunk) in evs.chunks(3).enumerate().take(rounds) {
                let ok_compute =
                    matches!(chunk[0].kind, TraceKind::ComputeStart { round } if round == rr);
                let ok_arrive =
                    matches!(chunk[1].kind, TraceKind::BarrierArrive { round } if round == rr);
                let ok_release =
                    matches!(chunk[2].kind, TraceKind::BarrierRelease { round } if round == rr);
                prop_assert!(ok_compute && ok_arrive && ok_release, "round {} malformed", rr);
            }
            let done = matches!(evs.last().unwrap().kind, TraceKind::KernelDone);
            prop_assert!(done);
        }
    }

    /// GPU simple synchronization cost never decreases with block count
    /// (Eq. 6 is monotone).
    #[test]
    fn simple_sync_monotone_in_blocks(n in 1usize..30) {
        let w = ConstWorkload::from_micros(0.5, 40);
        let s = |n: usize| {
            simulate(&SimConfig::new(n, 64, SyncMethod::GpuSimple), &w)
                .sync_per_round()
        };
        prop_assert!(s(n + 1) >= s(n), "N={n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Eq. 8 grouping always partitions the blocks.
    #[test]
    fn tree_group_sizes_partition(n in 1usize..512) {
        let sizes = model::tree_group_sizes(n);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        prop_assert!(sizes.iter().all(|&s| s > 0));
        // Group count is ceil(sqrt(n)) or one less (empty last group dropped).
        let m = (n as f64).sqrt().ceil() as usize;
        prop_assert!(sizes.len() == m || sizes.len() + 1 == m);
    }

    /// Eq. 2 is bounded by 1/rho and reaches 1 at S_S = 1.
    #[test]
    fn speedup_bounds(rho in 0.01f64..1.0, ss in 1.0f64..1_000.0) {
        let s = model::kernel_speedup(rho, ss);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= model::max_speedup(rho) + 1e-12);
    }

    /// Eq. 6 is exactly linear; fitting recovers its constants.
    #[test]
    fn fit_recovers_eq6(t_a in 1.0f64..500.0, t_c in 0.0f64..2_000.0) {
        let samples: Vec<(f64, f64)> =
            (1..=30).map(|n| (n as f64, model::t_gss(n, t_a, t_c))).collect();
        let fit = model::fit_line(&samples);
        prop_assert!((fit.slope - t_a).abs() < 1e-6);
        prop_assert!((fit.intercept - t_c).abs() < 1e-3);
    }

    /// The time types round-trip through arithmetic.
    #[test]
    fn sim_time_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        use blocksync::device::SimTime;
        let t = SimTime(a) + SimDuration(b);
        prop_assert_eq!(t.since(SimTime(a)), SimDuration(b));
        prop_assert_eq!(t - SimDuration(b), SimTime(a));
    }
}
