//! Cross-method fault-injection suite: every [`SyncMethod`] — including
//! both CPU modes — must convert an injected fault into a structured
//! [`ExecError`] naming the offending block and round, within the policy
//! timeout. No test here may hang: detection latency is asserted against a
//! hard bound well below the harness timeout.

use std::time::{Duration, Instant};

use blocksync::core::{
    ExecError, FaultInjector, FaultPlan, GlobalBuffer, GridConfig, GridExecutor, RoundKernel,
    SpinStrategy, SyncMethod, SyncPolicy, TreeLevels,
};

/// Every method with inter-block ordering guarantees.
const ALL_SYNC_METHODS: [SyncMethod; 8] = [
    SyncMethod::CpuExplicit,
    SyncMethod::CpuImplicit,
    SyncMethod::GpuSimple,
    SyncMethod::GpuTree(TreeLevels::Two),
    SyncMethod::GpuTree(TreeLevels::Three),
    SyncMethod::GpuLockFree,
    SyncMethod::SenseReversing,
    SyncMethod::Dissemination,
];

struct Increment {
    slots: GlobalBuffer<u64>,
    rounds: usize,
}

impl Increment {
    fn new(n: usize, rounds: usize) -> Self {
        Increment {
            slots: GlobalBuffer::new(n),
            rounds,
        }
    }
}

impl RoundKernel for Increment {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &blocksync::core::BlockCtx, _round: usize) {
        let b = ctx.block_id;
        self.slots.set(b, self.slots.get(b) + 1);
    }
}

#[test]
fn injected_panic_names_block_and_round_under_every_method() {
    for method in ALL_SYNC_METHODS {
        let k = FaultInjector::new(Increment::new(4, 6), FaultPlan::panic_at(2, 3));
        let cfg =
            GridConfig::new(4, 8).with_policy(SyncPolicy::with_timeout(Duration::from_secs(20)));
        let started = Instant::now();
        let err = GridExecutor::new(cfg, method).run(&k).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "{method}: detection too slow"
        );
        match err {
            ExecError::BlockPanicked {
                block,
                round,
                message,
            } => {
                assert_eq!((block, round), (2, 3), "{method}");
                assert!(message.contains("injected fault"), "{method}: {message}");
            }
            other => panic!("{method}: expected BlockPanicked, got {other:?}"),
        }
    }
}

#[test]
fn panic_in_round_zero_and_last_round_are_both_caught() {
    for method in [SyncMethod::GpuSimple, SyncMethod::CpuImplicit] {
        for round in [0usize, 5] {
            let k = FaultInjector::new(Increment::new(3, 6), FaultPlan::panic_at(0, round));
            let err = GridExecutor::new(GridConfig::new(3, 8), method)
                .run(&k)
                .unwrap_err();
            assert!(
                matches!(err, ExecError::BlockPanicked { block: 0, round: r, .. } if r == round),
                "{method} round {round}: got {err:?}"
            );
        }
    }
}

/// A straggler (cooperatively-infinite loop) must trip the timeout with a
/// diagnostic naming it — for every method, every spin strategy. This is
/// the test that proves the CPU-implicit condvar rendezvous also honours
/// the deadline, not just the device-side spin barriers.
#[test]
fn injected_straggler_times_out_under_every_method() {
    for method in ALL_SYNC_METHODS {
        for spin in [
            SpinStrategy::Spin,
            SpinStrategy::Yield,
            SpinStrategy::Backoff,
        ] {
            let k = FaultInjector::new(Increment::new(3, 5), FaultPlan::straggler_at(1, 2));
            let timeout = Duration::from_millis(80);
            let cfg = GridConfig::new(3, 8)
                .with_policy(SyncPolicy::with_timeout(timeout).with_spin(spin));
            let started = Instant::now();
            let err = GridExecutor::new(cfg, method).run(&k).unwrap_err();
            let elapsed = started.elapsed();
            assert!(
                elapsed < Duration::from_secs(10),
                "{method}/{spin:?}: unwind took {elapsed:?}"
            );
            match err {
                ExecError::BarrierTimeout { diagnostic } => {
                    assert_eq!(
                        diagnostic.stragglers(),
                        vec![1],
                        "{method}/{spin:?}: {diagnostic}"
                    );
                    assert_eq!(diagnostic.round, 2, "{method}/{spin:?}");
                    assert_eq!(diagnostic.timeout, timeout, "{method}/{spin:?}");
                }
                other => panic!("{method}/{spin:?}: expected BarrierTimeout, got {other:?}"),
            }
        }
    }
}

/// A transient delay shorter than the timeout must be absorbed: the run
/// succeeds and results are correct.
#[test]
fn delay_within_timeout_is_absorbed_under_every_method() {
    for method in ALL_SYNC_METHODS {
        let k = FaultInjector::new(
            Increment::new(3, 4),
            FaultPlan::delay_at(2, 1, Duration::from_millis(20)),
        );
        let cfg =
            GridConfig::new(3, 8).with_policy(SyncPolicy::with_timeout(Duration::from_secs(10)));
        let stats = GridExecutor::new(cfg, method)
            .run(&k)
            .unwrap_or_else(|e| panic!("{method}: {e}"));
        assert_eq!(stats.rounds, 4);
        assert!(
            k.inner().slots.to_vec().iter().all(|&v| v == 4),
            "{method}: lost work"
        );
    }
}

/// Without a timeout configured (the default policy), a panic must still
/// unwind every peer via barrier poisoning — bounded waits are an extra
/// guarantee, not a prerequisite for panic safety.
#[test]
fn panic_unwinds_peers_even_without_a_timeout() {
    for method in ALL_SYNC_METHODS {
        let k = FaultInjector::new(Increment::new(4, 5), FaultPlan::panic_at(3, 1));
        let started = Instant::now();
        let err = GridExecutor::new(GridConfig::new(4, 8), method)
            .run(&k)
            .unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "{method}: poison propagation too slow"
        );
        assert!(
            matches!(
                err,
                ExecError::BlockPanicked {
                    block: 3,
                    round: 1,
                    ..
                }
            ),
            "{method}: got {err:?}"
        );
    }
}

/// Regression: a **non-cooperative** straggler (never checks the abort
/// signal, never returns) under CPU-explicit synchronization used to hang
/// the run forever — the host aborted on deadline but then unconditionally
/// joined every worker, including the one stuck inside kernel code. With
/// the join watchdog, `run_owned` must surface the deadline's
/// `StuckDiagnostic` as a `BarrierTimeout` and detach the stuck thread.
#[test]
fn cpu_explicit_noncooperative_straggler_does_not_hang() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    struct ParkForever {
        parked: Arc<AtomicBool>,
    }
    impl RoundKernel for ParkForever {
        fn rounds(&self) -> usize {
            3
        }
        fn round(&self, ctx: &blocksync::core::BlockCtx, round: usize) {
            if ctx.block_id == 1 && round == 1 {
                self.parked.store(true, Ordering::Release);
                // Deliberately ignores the abort signal: models kernel code
                // stuck in a syscall or a foreign spin loop.
                loop {
                    std::thread::park();
                }
            }
        }
    }

    let parked = Arc::new(AtomicBool::new(false));
    let kernel: Arc<dyn RoundKernel + Send + Sync> = Arc::new(ParkForever {
        parked: Arc::clone(&parked),
    });
    let cfg =
        GridConfig::new(3, 8).with_policy(SyncPolicy::with_timeout(Duration::from_millis(50)));
    let started = Instant::now();
    let err = GridExecutor::new(cfg, SyncMethod::CpuExplicit)
        .run_owned(kernel)
        .unwrap_err();
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
    assert!(parked.load(Ordering::Acquire), "straggler never ran");
    match err {
        ExecError::BarrierTimeout { diagnostic } => {
            assert_eq!(diagnostic.barrier, "cpu-explicit", "{diagnostic}");
            assert_eq!(diagnostic.round, 1, "{diagnostic}");
            assert_eq!(diagnostic.stragglers(), vec![1], "{diagnostic}");
            assert_eq!(diagnostic.timeout, Duration::from_millis(50));
        }
        other => panic!("expected BarrierTimeout, got {other:?}"),
    }
}

/// The error message (Display) must carry the block, the round, and — for
/// timeouts — the stragglers, so operators can act on logs alone.
#[test]
fn error_displays_are_actionable() {
    let k = FaultInjector::new(Increment::new(3, 4), FaultPlan::straggler_at(0, 1));
    let cfg =
        GridConfig::new(3, 8).with_policy(SyncPolicy::with_timeout(Duration::from_millis(60)));
    let err = GridExecutor::new(cfg, SyncMethod::GpuLockFree)
        .run(&k)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("round 1"), "{msg}");
    assert!(msg.contains("[0]"), "{msg}");
    assert!(msg.contains("gpu-lock-free"), "{msg}");

    let k = FaultInjector::new(Increment::new(2, 2), FaultPlan::panic_at(1, 0));
    let err = GridExecutor::new(GridConfig::new(2, 8), SyncMethod::GpuSimple)
        .run(&k)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("block 1"), "{msg}");
    assert!(msg.contains("round 0"), "{msg}");
}
