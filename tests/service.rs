//! Integration tests of the service plane (`blocksync_core::service`):
//! the sharded barrier-as-a-service layer routing submissions to pooled
//! runtimes behind bounded admission control.
//!
//! The load-bearing properties are the admission invariants:
//! - a tenant's in-flight quota is never exceeded, even under concurrent
//!   submitters racing on one tenant;
//! - `QueueFull` surfaces exactly at queue capacity — the capacity-th
//!   submission is admitted, the capacity+1-th is rejected, and one
//!   release reopens exactly one slot;
//! - shard spin-down never drops queued or in-flight launches: a shard is
//!   only retired once fully drained *and* idle past the TTL
//!   (drain-before-retire).

use std::sync::Arc;
use std::time::Duration;

use blocksync::core::{
    BlockCtx, GlobalBuffer, GridService, RoundKernel, ServiceConfig, ServiceError, ShardKey,
    SyncMethod,
};
use proptest::prelude::*;

/// Each round every block bumps its slot; after R rounds with a correct
/// grid barrier every slot holds R — cheap, verifiable service traffic.
struct Bump {
    slots: GlobalBuffer<u64>,
    rounds: usize,
}

impl Bump {
    fn for_shard(key: ShardKey, rounds: usize) -> Arc<Bump> {
        Arc::new(Bump {
            slots: GlobalBuffer::new(key.blocks),
            rounds,
        })
    }

    fn verify(&self) -> bool {
        self.slots.to_vec().iter().all(|&v| v == self.rounds as u64)
    }
}

impl RoundKernel for Bump {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, _round: usize) {
        let b = ctx.block_id;
        self.slots.set(b, self.slots.get(b) + 1);
    }
}

fn shard_a() -> ShardKey {
    ShardKey::new(3, 8, SyncMethod::GpuLockFree)
}

fn shard_b() -> ShardKey {
    ShardKey::new(2, 8, SyncMethod::GpuSimple)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent submitters racing on one tenant: with no releases, the
    /// service admits exactly `min(quota, attempts)` launches — never one
    /// more (quota is atomic under the admission lock) and never one less
    /// (no spurious rejection while slots are free). Every rejection is a
    /// quota rejection, and every admitted launch completes and verifies.
    #[test]
    fn tenant_quota_is_exact_under_concurrent_submitters(
        quota in 1usize..5,
        threads in 2usize..5,
        per_thread in 1usize..5,
    ) {
        let key = shard_a();
        let svc = GridService::new(
            ServiceConfig::default()
                .with_max_shards(1)
                // Capacity can't interfere: only quota may reject.
                .with_queue_capacity(threads * per_thread + 1)
                .with_tenant_quota(quota)
                .with_idle_ttl(Duration::from_secs(3600)),
        );
        let attempts = threads * per_thread;
        let (admitted, quota_rejections): (Vec<_>, usize) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let svc = &svc;
                    scope.spawn(move || {
                        let mut ok = Vec::new();
                        let mut rejected = 0usize;
                        for _ in 0..per_thread {
                            let kernel = Bump::for_shard(key, 10);
                            match svc.submit("tenant", key, Arc::clone(&kernel) as _) {
                                Ok(h) => ok.push((kernel, h)),
                                Err(ServiceError::QuotaExceeded { tenant, quota: q }) => {
                                    assert_eq!(tenant, "tenant");
                                    assert!(q > 0);
                                    rejected += 1;
                                }
                                Err(e) => panic!("only quota may reject here: {e}"),
                            }
                        }
                        (ok, rejected)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("submitter panicked"))
                .fold((Vec::new(), 0), |(mut all, rej), (ok, r)| {
                    all.extend(ok);
                    (all, rej + r)
                })
        });
        prop_assert_eq!(admitted.len(), attempts.min(quota));
        prop_assert_eq!(quota_rejections, attempts - attempts.min(quota));
        prop_assert_eq!(svc.tenant_inflight("tenant"), admitted.len());
        for (kernel, h) in admitted {
            h.wait().expect("clean launch");
            prop_assert!(kernel.verify());
        }
        // Every ticket released: the tenant's ledger is empty again.
        prop_assert_eq!(svc.tenant_inflight("tenant"), 0);
    }

    /// `QueueFull` surfaces exactly at capacity: with per-submission
    /// tenants (so quota never interferes), the first `capacity` submits
    /// are admitted, the next is rejected naming the shard and capacity,
    /// and releasing one launch reopens exactly one slot.
    #[test]
    fn queue_full_surfaces_exactly_at_capacity(capacity in 1usize..6) {
        let key = shard_a();
        let svc = GridService::new(
            ServiceConfig::default()
                .with_max_shards(1)
                .with_queue_capacity(capacity)
                .with_tenant_quota(1)
                .with_idle_ttl(Duration::from_secs(3600)),
        );
        let mut held = Vec::new();
        for i in 0..capacity {
            let kernel = Bump::for_shard(key, 10);
            let h = svc
                .submit(&format!("t{i}"), key, Arc::clone(&kernel) as _)
                .unwrap_or_else(|e| panic!("submit {i} under capacity: {e}"));
            held.push((kernel, h));
        }
        prop_assert_eq!(svc.shard_inflight(key), Some(capacity));
        // The capacity+1-th submission is the first rejected one.
        match svc.submit("overflow", key, Bump::for_shard(key, 10) as _) {
            Err(ServiceError::QueueFull { shard, capacity: c }) => {
                prop_assert_eq!(shard, key.to_string());
                prop_assert_eq!(c, capacity);
            }
            other => {
                panic!("expected QueueFull at capacity {capacity}, got {other:?}")
            }
        }
        // Releasing one in-flight launch reopens exactly one slot.
        let (kernel, h) = held.remove(0);
        h.wait().expect("clean launch");
        prop_assert!(kernel.verify());
        let kernel = Bump::for_shard(key, 10);
        let h = svc
            .submit("reopened", key, Arc::clone(&kernel) as _)
            .unwrap_or_else(|e| panic!("slot must have reopened: {e}"));
        held.push((kernel, h));
        for (kernel, h) in held {
            h.wait().expect("clean launch");
            prop_assert!(kernel.verify());
        }
    }

    /// Drain-before-retire: with a zero idle TTL (every shard is
    /// retirement-eligible the moment it is idle) and a one-shard limit,
    /// a busy shard is never reaped out from under its in-flight launches
    /// — the slot only frees once the shard fully drains, after which the
    /// next shape can spin up and every held launch still verifies.
    #[test]
    fn spin_down_never_drops_inflight_launches(inflight in 1usize..5) {
        let a = shard_a();
        let b = shard_b();
        let svc = GridService::new(
            ServiceConfig::default()
                .with_max_shards(1)
                .with_queue_capacity(8)
                .with_tenant_quota(8)
                .with_idle_ttl(Duration::ZERO),
        );
        let mut held = Vec::new();
        for _ in 0..inflight {
            let kernel = Bump::for_shard(a, 10);
            let h = svc
                .submit("tenant", a, Arc::clone(&kernel) as _)
                .expect("clean launch");
            held.push((kernel, h));
        }
        // Shard A holds launches, so the reap that runs inside this
        // submit must NOT retire it to make room: the request is refused.
        match svc.submit("tenant", b, Bump::for_shard(b, 10) as _) {
            Err(ServiceError::ShardLimit { limit }) => prop_assert_eq!(limit, 1),
            other => {
                panic!("busy shard must not be reaped for a new shape: {other:?}")
            }
        }
        prop_assert_eq!(svc.shard_keys(), vec![a]);
        // Drain shard A completely; nothing was dropped.
        for (kernel, h) in held.drain(..) {
            h.wait().expect("clean launch");
            prop_assert!(kernel.verify());
        }
        // Now A is drained and idle past the (zero) TTL: the same request
        // retires it and spins up B in its place.
        let kernel = Bump::for_shard(b, 10);
        let h = svc
            .submit("tenant", b, Arc::clone(&kernel) as _)
            .unwrap_or_else(|e| panic!("drained shard must retire: {e}"));
        prop_assert_eq!(svc.shard_keys(), vec![b]);
        h.wait().expect("clean launch");
        prop_assert!(kernel.verify());
        // The lifecycle counters saw one retirement and two spin-ups.
        let snap = svc.observer().snapshot();
        prop_assert_eq!(snap.counters["service_shards_spun_up_total"], 2);
        prop_assert_eq!(snap.counters["service_shards_retired_total"], 1);
        prop_assert_eq!(snap.gauges["service_shards_live"], 1);
    }
}

/// Blocking admission: a full queue delays `submit_within` rather than
/// rejecting it, and the slot handoff happens as soon as a wait releases
/// a ticket — well before the deadline. A too-short deadline surfaces
/// `Deadline` with the shard name.
#[test]
fn submit_within_blocks_until_a_slot_frees() {
    let key = shard_a();
    let svc = Arc::new(GridService::new(
        ServiceConfig::default()
            .with_max_shards(1)
            .with_queue_capacity(1)
            .with_tenant_quota(8)
            .with_idle_ttl(Duration::from_secs(3600)),
    ));
    let holder = Bump::for_shard(key, 10);
    let held = svc
        .submit("tenant", key, Arc::clone(&holder) as _)
        .expect("first submit fills the queue");
    // An immediate-deadline submit cannot be admitted while the queue is
    // full and must time out naming the shard.
    match svc.submit_within("tenant", key, Bump::for_shard(key, 10) as _, Duration::ZERO) {
        Err(ServiceError::Deadline { shard, .. }) => assert_eq!(shard, key.to_string()),
        other => panic!("expected Deadline on a full queue, got {other:?}"),
    }
    // A generous deadline succeeds once the holder is waited from a
    // second thread.
    std::thread::scope(|scope| {
        let svc2 = Arc::clone(&svc);
        let blocked = scope.spawn(move || {
            let kernel = Bump::for_shard(key, 10);
            let h = svc2
                .submit_within(
                    "tenant",
                    key,
                    Arc::clone(&kernel) as _,
                    Duration::from_secs(30),
                )
                .expect("slot frees well before the deadline");
            h.wait().expect("clean launch");
            assert!(kernel.verify());
        });
        // Give the blocked submitter time to park, then release the slot.
        std::thread::sleep(Duration::from_millis(20));
        held.wait().expect("clean launch");
        assert!(holder.verify());
        blocked.join().expect("blocked submitter panicked");
    });
}
