//! Integration and property tests of the persistent pooled runtime
//! ([`GridRuntime`]): launch-overhead bounds under repeated submission,
//! fault recovery that leaves the pool reusable, and the cross-method
//! fault-injection matrix run through the pooled executor path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use blocksync::core::{
    stall_duration, BlockCtx, ExecError, Fault, FaultInjector, FaultKind, FaultPlan, FaultSchedule,
    GlobalBuffer, GridConfig, GridExecutor, GridRuntime, RoundKernel, RuntimeKind, StuckPhase,
    SyncMethod, SyncPolicy, TreeLevels,
};
use proptest::prelude::*;

/// Every method the pooled runtime supports: the device-side barriers, the
/// CPU-implicit driver rendezvous (the launch log *is* pipelined implicit
/// sync), and the barrier-free control.
const POOLED_METHODS: [SyncMethod; 8] = [
    SyncMethod::GpuSimple,
    SyncMethod::GpuTree(TreeLevels::Two),
    SyncMethod::GpuTree(TreeLevels::Three),
    SyncMethod::GpuLockFree,
    SyncMethod::SenseReversing,
    SyncMethod::Dissemination,
    SyncMethod::CpuImplicit,
    SyncMethod::NoSync,
];

struct Increment {
    slots: GlobalBuffer<u64>,
    rounds: usize,
}

impl Increment {
    fn new(n: usize, rounds: usize) -> Self {
        Increment {
            slots: GlobalBuffer::new(n),
            rounds,
        }
    }
}

impl RoundKernel for Increment {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, _round: usize) {
        let b = ctx.block_id;
        self.slots.set(b, self.slots.get(b) + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Repeated `submit()` on one pool keeps the warm launch overhead
    /// bounded by the cold thread-spawn launch of scoped runs: at least
    /// one warm handoff must beat the slowest cold spawn, for any small
    /// grid and round count. This is the pooled runtime's reason to exist
    /// (the paper's `t_O` amortization, extended across kernels).
    #[test]
    fn repeated_submits_keep_launch_below_cold_spawn(
        blocks in 4usize..=6,
        rounds in 2usize..=8,
    ) {
        let method = SyncMethod::GpuLockFree;
        let mut cold_max = Duration::ZERO;
        for _ in 0..3 {
            let k = Increment::new(blocks, rounds);
            let stats = GridExecutor::new(GridConfig::new(blocks, 8), method)
                .run(&k)
                .unwrap();
            cold_max = cold_max.max(stats.launch);
        }
        let rt = GridRuntime::new(GridConfig::new(blocks, 8), method).unwrap();
        let mut warm_min = Duration::MAX;
        for i in 0..8u64 {
            let k = Arc::new(Increment::new(blocks, rounds));
            let stats = rt.submit(Arc::clone(&k)).unwrap().wait().unwrap();
            let pool = stats.pool.as_ref().expect("pooled run carries pool stats");
            prop_assert_eq!(pool.launch_seq, i);
            prop_assert_eq!(pool.cold, i == 0);
            prop_assert!(k.slots.to_vec().iter().all(|&v| v == rounds as u64));
            if i > 0 {
                warm_min = warm_min.min(stats.launch);
            }
        }
        prop_assert!(
            warm_min <= cold_max,
            "no warm launch ({warm_min:?}) beat the slowest cold spawn ({cold_max:?})"
        );
    }

    /// A fault-injected launch (panic at a random block/round) fails
    /// alone; the pool stays reusable and the next submission completes
    /// with correct results.
    #[test]
    fn faulted_launch_leaves_pool_reusable(
        bad_block in 0usize..4,
        bad_round in 0usize..4,
    ) {
        let rt = GridRuntime::new(GridConfig::new(4, 8), SyncMethod::GpuLockFree).unwrap();
        let faulty = Arc::new(FaultInjector::new(
            Increment::new(4, 4),
            FaultPlan::panic_at(bad_block, bad_round),
        ));
        let err = rt.submit(faulty).unwrap().wait().unwrap_err();
        prop_assert!(
            matches!(
                err,
                ExecError::BlockPanicked { block, round, .. }
                    if block == bad_block && round == bad_round
            ),
            "got {err:?}"
        );
        let clean = Arc::new(Increment::new(4, 5));
        let stats = rt.submit(Arc::clone(&clean)).unwrap().wait().unwrap();
        prop_assert_eq!(stats.rounds, 5);
        prop_assert!(clean.slots.to_vec().iter().all(|&v| v == 5));
    }
}

/// The cross-method fault-injection matrix, run through the pooled
/// executor path (`--runtime pooled` equivalent): every supported method
/// converts an injected panic into a structured error naming the block and
/// round, and the *same executor* (hence the same pool) runs clean
/// afterwards.
#[test]
fn pooled_executor_survives_injected_panics_under_every_method() {
    for method in POOLED_METHODS {
        if method == SyncMethod::NoSync {
            continue; // no inter-block ordering: the fault plan's round
                      // alignment is meaningless without a barrier
        }
        let cfg = GridConfig::new(4, 8)
            .with_policy(SyncPolicy::with_timeout(Duration::from_secs(20)))
            .with_runtime(RuntimeKind::Pooled);
        let exec = GridExecutor::new(cfg, method);
        let k = FaultInjector::new(Increment::new(4, 6), FaultPlan::panic_at(2, 3));
        let started = Instant::now();
        let err = exec.run(&k).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "{method}: detection too slow"
        );
        assert!(
            matches!(
                err,
                ExecError::BlockPanicked {
                    block: 2,
                    round: 3,
                    ..
                }
            ),
            "{method}: got {err:?}"
        );
        // Same executor, same pool: a clean kernel still runs correctly.
        let clean = Increment::new(4, 4);
        let stats = exec.run(&clean).unwrap_or_else(|e| panic!("{method}: {e}"));
        assert_eq!(stats.rounds, 4, "{method}");
        assert!(
            clean.slots.to_vec().iter().all(|&v| v == 4),
            "{method}: lost work after pool recovery"
        );
        assert!(
            stats.pool.is_some(),
            "{method}: recovery run did not go through the pool"
        );
    }
}

/// A pooled straggler trips the policy timeout with a diagnostic naming
/// it, exactly like the scoped path — and the pool is usable afterwards.
#[test]
fn pooled_straggler_times_out_with_diagnostic() {
    let cfg = GridConfig::new(3, 8)
        .with_policy(SyncPolicy::with_timeout(Duration::from_millis(80)))
        .with_runtime(RuntimeKind::Pooled);
    let exec = GridExecutor::new(cfg, SyncMethod::GpuLockFree);
    let k = FaultInjector::new(Increment::new(3, 5), FaultPlan::straggler_at(1, 2));
    let started = Instant::now();
    let err = exec.run(&k).unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "unwind too slow"
    );
    match err {
        ExecError::BarrierTimeout { diagnostic } => {
            assert_eq!(diagnostic.stragglers(), vec![1], "{diagnostic}");
        }
        other => panic!("expected BarrierTimeout, got {other:?}"),
    }
    // FaultPlan stragglers are cooperative (they watch the abort signal),
    // so the worker is released and the pool keeps serving launches.
    let clean = Increment::new(3, 3);
    let stats = exec.run(&clean).unwrap();
    assert_eq!(stats.rounds, 3);
    assert!(clean.slots.to_vec().iter().all(|&v| v == 3));
}

/// `--runtime pooled` semantics after the launch-engine unification:
/// `CpuImplicit` runs pooled for real (pipelined submits through the launch
/// log), while `CpuExplicit` falls back to scoped *loudly* — the stats
/// record the fallback reason — and constructing a `GridRuntime` for it
/// directly is a structured error.
#[test]
fn cpu_explicit_falls_back_loudly_and_cpu_implicit_pools() {
    // CpuImplicit: a pooled request is served by a real pool.
    let cfg = GridConfig::new(3, 8).with_runtime(RuntimeKind::Pooled);
    let exec = GridExecutor::new(cfg, SyncMethod::CpuImplicit);
    let k = Increment::new(3, 4);
    let stats = exec.run(&k).unwrap();
    let pool = stats
        .pool
        .as_deref()
        .expect("pooled run carries pool stats");
    assert!(pool.ran_pooled(), "fallback recorded: {:?}", pool.fallback);
    assert!(k.slots.to_vec().iter().all(|&v| v == 4));
    // ... with pipelined launches through the same pool.
    let rt = GridRuntime::new(GridConfig::new(3, 8), SyncMethod::CpuImplicit).unwrap();
    let kernels: Vec<Arc<Increment>> = (0..3).map(|_| Arc::new(Increment::new(3, 6))).collect();
    let handles: Vec<_> = kernels
        .iter()
        .map(|k| rt.submit(Arc::clone(k)).unwrap())
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let stats = h.wait().unwrap();
        assert_eq!(stats.pool.as_ref().unwrap().launch_seq, i as u64);
        assert!(kernels[i].slots.to_vec().iter().all(|&v| v == 6));
    }

    // CpuExplicit: scoped fallback, but recorded rather than silent.
    let cfg = GridConfig::new(3, 8).with_runtime(RuntimeKind::Pooled);
    let k = Increment::new(3, 4);
    let stats = GridExecutor::new(cfg, SyncMethod::CpuExplicit)
        .run(&k)
        .unwrap();
    let pool = stats.pool.as_deref().expect("fallback must be recorded");
    assert!(!pool.ran_pooled());
    assert!(
        pool.fallback.as_deref().unwrap().contains("cpu-explicit"),
        "reason names the method: {:?}",
        pool.fallback
    );
    assert!(k.slots.to_vec().iter().all(|&v| v == 4));
    let err = GridRuntime::new(GridConfig::new(3, 8), SyncMethod::CpuExplicit).unwrap_err();
    assert!(
        matches!(err, ExecError::RuntimeUnsupported { .. }),
        "got {err:?}"
    );
}

/// The same block stalling (non-cooperatively) on N consecutive owned
/// submits must be abandoned and *replaced* each time: the per-block
/// generation counter increases strictly per incident, and the pool stays
/// serviceable throughout — the self-healing loop the chaos harness soaks.
#[test]
fn repeated_straggler_is_replaced_every_time_with_rising_generation() {
    let timeout = Duration::from_millis(80);
    let cfg = GridConfig::new(3, 8).with_policy(SyncPolicy::with_timeout(timeout));
    let rt = GridRuntime::new(cfg, SyncMethod::GpuLockFree).unwrap();
    assert_eq!(rt.generations(), vec![0, 0, 0]);
    for incident in 1..=3u64 {
        let sick = Arc::new(FaultInjector::with_schedule(
            Increment::new(3, 4),
            FaultSchedule::new(vec![Fault::in_round(
                1,
                1,
                FaultKind::Stall(stall_duration(timeout)),
            )]),
        ));
        let err = rt.submit(sick).unwrap().wait().unwrap_err();
        assert!(
            matches!(err, ExecError::BarrierTimeout { .. }),
            "incident {incident}: got {err:?}"
        );
        let gens = rt.generations();
        assert_eq!(
            gens[1], incident,
            "incident {incident}: stalled worker not replaced (gens {gens:?})"
        );
        assert_eq!(
            (gens[0], gens[2]),
            (0, 0),
            "incident {incident}: healthy workers were churned (gens {gens:?})"
        );
        // The replacement worker serves the very next launch correctly.
        let clean = Arc::new(Increment::new(3, 2));
        let stats = rt.submit(Arc::clone(&clean)).unwrap().wait().unwrap();
        assert_eq!(stats.rounds, 2, "incident {incident}");
        assert!(
            clean.slots.to_vec().iter().all(|&v| v == 2),
            "incident {incident}: lost work after replacement"
        );
    }
}

/// Regression: a fault that strikes during pooled *assembly* (before round
/// 0 of the kernel body) must be diagnosed in the assembly phase — naming
/// the launch's gate, not a fictitious round-0 barrier wait.
#[test]
fn assembly_phase_fault_is_reported_as_assembly_not_round_zero() {
    let timeout = Duration::from_millis(80);
    let cfg = GridConfig::new(3, 8).with_policy(SyncPolicy::with_timeout(timeout));
    let rt = GridRuntime::new(cfg, SyncMethod::GpuLockFree).unwrap();

    // Cooperative assembly straggler: diagnosed by a peer's gate deadline.
    let sick = Arc::new(FaultInjector::with_schedule(
        Increment::new(3, 4),
        FaultSchedule::new(vec![Fault::in_assembly(2, FaultKind::Straggler)]),
    ));
    let err = rt.submit(sick).unwrap().wait().unwrap_err();
    match err {
        ExecError::BarrierTimeout { diagnostic } => {
            assert_eq!(diagnostic.phase, StuckPhase::Assembly, "{diagnostic}");
            assert_eq!(diagnostic.waiting_block, 2, "{diagnostic}");
            let msg = diagnostic.to_string();
            assert!(msg.contains("assembly"), "{msg}");
            assert!(
                !msg.contains("barrier round"),
                "looks like a round wait: {msg}"
            );
        }
        other => panic!("expected BarrierTimeout, got {other:?}"),
    }

    // Non-cooperative assembly stall: diagnosed via host abandonment, and
    // the stuck worker is replaced.
    let sick = Arc::new(FaultInjector::with_schedule(
        Increment::new(3, 4),
        FaultSchedule::new(vec![Fault::in_assembly(
            0,
            FaultKind::Stall(stall_duration(timeout)),
        )]),
    ));
    let err = rt.submit(sick).unwrap().wait().unwrap_err();
    match err {
        ExecError::BarrierTimeout { diagnostic } => {
            assert_eq!(diagnostic.phase, StuckPhase::Assembly, "{diagnostic}");
            assert_eq!(diagnostic.waiting_block, 0, "{diagnostic}");
        }
        other => panic!("expected BarrierTimeout, got {other:?}"),
    }
    assert_eq!(
        rt.generations()[0],
        1,
        "stalled assembly worker not replaced"
    );

    // Either way the pool keeps serving.
    let clean = Arc::new(Increment::new(3, 3));
    let stats = rt.submit(Arc::clone(&clean)).unwrap().wait().unwrap();
    assert_eq!(stats.rounds, 3);
    assert!(clean.slots.to_vec().iter().all(|&v| v == 3));
}

/// Multiple faults in one schedule: the merged error is deterministic —
/// the earliest-round origin wins, and on a same-round tie the lowest
/// block id wins (see DESIGN.md §6).
#[test]
fn multi_fault_schedule_reports_the_earliest_then_lowest_origin() {
    let cfg = GridConfig::new(4, 8).with_policy(SyncPolicy::with_timeout(Duration::from_secs(10)));
    // Earlier round wins regardless of block order.
    let k = FaultInjector::with_schedule(
        Increment::new(4, 6),
        FaultSchedule::new(vec![
            Fault::in_round(1, 3, FaultKind::Panic),
            Fault::in_round(2, 1, FaultKind::Panic),
        ]),
    );
    let err = GridExecutor::new(cfg.clone(), SyncMethod::GpuLockFree)
        .run(&k)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BlockPanicked {
                block: 2,
                round: 1,
                ..
            }
        ),
        "earliest round should win: {err:?}"
    );
    // Same round: the lowest block id is the reported origin.
    let k = FaultInjector::with_schedule(
        Increment::new(4, 6),
        FaultSchedule::new(vec![
            Fault::in_round(3, 2, FaultKind::Panic),
            Fault::in_round(1, 2, FaultKind::Panic),
        ]),
    );
    let err = GridExecutor::new(cfg, SyncMethod::GpuLockFree)
        .run(&k)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BlockPanicked {
                block: 1,
                round: 2,
                ..
            }
        ),
        "lowest block should win the tie: {err:?}"
    );
}
