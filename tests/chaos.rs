//! Chaos-harness integration tests: bounded soaks through the public
//! [`ChaosConfig`] API plus seed-reproducibility of the generated
//! schedules. The heavyweight open-ended soak lives in CI (`blocksync
//! chaos`); these runs are sized to finish in seconds.

use std::time::Duration;

use blocksync::core::{
    ChaosConfig, FaultProfile, FaultSchedule, RuntimeKind, SyncMethod, TreeLevels,
};

fn bounded(launches: usize, seed: u64, runtime: RuntimeKind, method: SyncMethod) -> ChaosConfig {
    ChaosConfig {
        launches,
        fault_rate: 0.35,
        seed,
        method,
        runtime,
        ..ChaosConfig::default()
    }
}

#[test]
fn bounded_pooled_soak_holds_every_invariant() {
    let report = bounded(48, 0xC0FFEE, RuntimeKind::Pooled, SyncMethod::GpuLockFree)
        .run()
        .expect("config is valid");
    assert!(report.passed(), "soak failed:\n{report}");
    assert_eq!(report.launches, 48);
    assert!(
        report.faulty > 0,
        "0.35 rate over 48 launches drew no faults"
    );
    assert!(report.clean > 0, "every launch drew a fault");
}

#[test]
fn bounded_scoped_soak_holds_every_invariant() {
    let report = bounded(
        24,
        0xBAD5EED,
        RuntimeKind::Scoped,
        SyncMethod::GpuTree(TreeLevels::Two),
    )
    .run()
    .expect("config is valid");
    assert!(report.passed(), "soak failed:\n{report}");
}

/// The whole point of logging one u64: the same seed must regenerate the
/// same per-launch fault decisions and the same schedules.
#[test]
fn same_seed_reproduces_the_same_schedules() {
    let profile = FaultProfile::new(5, 8, Duration::from_millis(80));
    for seed in [0u64, 1, 42, u64::MAX] {
        assert_eq!(
            FaultSchedule::random(seed, &profile),
            FaultSchedule::random(seed, &profile),
            "seed {seed} not reproducible"
        );
    }
    // And different seeds should (overwhelmingly) differ somewhere.
    let schedules: Vec<FaultSchedule> = (0..16)
        .map(|s| FaultSchedule::random(s, &profile))
        .collect();
    assert!(
        schedules.windows(2).any(|w| w[0] != w[1]),
        "16 consecutive seeds produced identical schedules"
    );
}

/// Two soaks from the same seed must agree on the aggregate fault/clean
/// split — the run-level reproducibility the CLI promises when it prints
/// `reproduce with --seed`.
#[test]
fn same_seed_reproduces_the_same_soak_split() {
    let cfg = bounded(24, 7, RuntimeKind::Pooled, SyncMethod::GpuSimple);
    let a = cfg.run().expect("valid");
    let b = cfg.run().expect("valid");
    assert!(a.passed() && b.passed(), "a:\n{a}\nb:\n{b}");
    assert_eq!(
        (a.faulty, a.benign, a.clean),
        (b.faulty, b.benign, b.clean),
        "same seed diverged"
    );
}

#[test]
fn chaos_rejects_configs_it_cannot_diagnose() {
    for method in [
        SyncMethod::CpuExplicit,
        SyncMethod::NoSync,
        SyncMethod::Auto,
    ] {
        let cfg = bounded(8, 1, RuntimeKind::Pooled, method);
        assert!(cfg.validate().is_err(), "{method} should be rejected");
        assert!(cfg.run().is_err(), "{method} should be rejected by run()");
    }
}
