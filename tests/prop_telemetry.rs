//! Property-based tests of the telemetry plane (`blocksync_core::trace`).
//!
//! Invariants, for every synchronization method and any injected fault:
//!
//! 1. **Well-nested, monotone event streams** — per block, timestamps are
//!    non-decreasing, every `BarrierArrive` is closed by a `BarrierDepart`
//!    of the same round before the next arrive, and rounds never decrease.
//! 2. **Exact counts** — a run that completes records exactly
//!    `n_blocks x rounds` arrive/depart/round-start/round-end events at
//!    stride 1, with nothing dropped.
//! 3. **Timeline ≈ stats** — the sum of arrive→depart spans matches the
//!    `KernelStats` aggregate sync time within 10% for every method (the
//!    acceptance bar for the Chrome-trace export, which draws those spans).

use std::time::Duration;

use blocksync::core::{
    BlockCtx, EventRecorder, ExecError, FaultInjector, FaultPlan, GlobalBuffer, GridConfig,
    GridExecutor, RoundKernel, SyncMethod, SyncPolicy, Telemetry, TraceConfig, TraceEventKind,
    TreeLevels,
};
use blocksync::microbench::run_host_traced;
use proptest::prelude::*;

/// Every method the executor can run (NoSync has no barrier events and is
/// covered by a deterministic test below).
fn exec_method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        Just(SyncMethod::CpuExplicit),
        Just(SyncMethod::CpuImplicit),
        Just(SyncMethod::GpuSimple),
        Just(SyncMethod::GpuTree(TreeLevels::Two)),
        Just(SyncMethod::GpuTree(TreeLevels::Three)),
        Just(SyncMethod::GpuLockFree),
        Just(SyncMethod::SenseReversing),
        Just(SyncMethod::Dissemination),
    ]
}

#[derive(Debug, Clone, Copy)]
enum Fault {
    None,
    /// Stall one (block, round) briefly — perturbs timing, run completes.
    Delay(usize, usize),
    /// Kill one (block, round) — run must fail as `BlockPanicked`.
    Panic(usize, usize),
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::None),
        (0usize..8, 0usize..40).prop_map(|(b, r)| Fault::Delay(b, r)),
        (0usize..8, 0usize..40).prop_map(|(b, r)| Fault::Panic(b, r)),
    ]
}

/// Minimal round kernel: every block stamps its (block, round) pair.
struct StampKernel {
    out: GlobalBuffer<u64>,
    rounds: usize,
}

impl StampKernel {
    fn new(n_blocks: usize, rounds: usize) -> Self {
        StampKernel {
            out: GlobalBuffer::new(n_blocks),
            rounds,
        }
    }
}

impl RoundKernel for StampKernel {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, round: usize) {
        self.out
            .set(ctx.block_id, (ctx.block_id * 1000 + round) as u64);
    }
}

/// Check invariant 1 (monotone, well-nested per-block streams).
fn check_well_nested(t: &Telemetry, n_blocks: usize) {
    for b in 0..n_blocks {
        let evs: Vec<_> = t.events.iter().filter(|e| e.block == b).collect();
        for w in evs.windows(2) {
            assert!(
                w[0].at <= w[1].at,
                "block {b}: time went backwards: {} then {}",
                w[0],
                w[1]
            );
        }
        let mut open: Option<usize> = None;
        let mut last_departed: Option<usize> = None;
        for e in &evs {
            match e.kind {
                TraceEventKind::BarrierArrive => {
                    assert!(
                        open.is_none(),
                        "block {b}: arrive {} while round {open:?} still open",
                        e.round
                    );
                    if let Some(prev) = last_departed {
                        assert!(
                            e.round > prev,
                            "block {b}: arrive round {} after departing {prev}",
                            e.round
                        );
                    }
                    open = Some(e.round);
                }
                TraceEventKind::BarrierDepart => {
                    assert_eq!(
                        open.take(),
                        Some(e.round),
                        "block {b} depart round {} does not close the open arrive",
                        e.round
                    );
                    last_departed = Some(e.round);
                }
                _ => {}
            }
        }
        assert!(
            open.is_none(),
            "block {b}: arrive round {open:?} never departed in a completed run"
        );
    }
}

proptest! {
    // Thread-heavy cases: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn events_well_nested_for_any_method_and_fault(
        method in exec_method_strategy(),
        n_blocks in 1usize..5,
        rounds in 1usize..40,
        fault in fault_strategy(),
    ) {
        if !EventRecorder::ENABLED {
            return; // feature compiled out: nothing to check
        }
        let cfg = GridConfig::new(n_blocks, 8)
            .with_policy(SyncPolicy::with_timeout(Duration::from_secs(30)))
            .with_trace(TraceConfig::new());
        let exec = GridExecutor::new(cfg, method);
        let base = StampKernel::new(n_blocks, rounds);
        match fault {
            Fault::Panic(b, r) => {
                let (b, r) = (b % n_blocks, r % rounds);
                let k = FaultInjector::new(base, FaultPlan::panic_at(b, r));
                let err = exec.run(&k).unwrap_err();
                match err {
                    ExecError::BlockPanicked { block, round, .. } => {
                        prop_assert_eq!((block, round), (b, r));
                    }
                    other => panic!("{method}: expected BlockPanicked, got {other:?}"),
                }
            }
            Fault::None | Fault::Delay(..) => {
                let plan = match fault {
                    Fault::Delay(b, r) => FaultPlan::delay_at(
                        b % n_blocks,
                        r % rounds,
                        Duration::from_millis(2),
                    ),
                    // A delay of zero is the identity plan.
                    _ => FaultPlan::delay_at(0, 0, Duration::ZERO),
                };
                let k = FaultInjector::new(base, plan);
                let stats = exec.run(&k).expect("delayed runs still complete");
                let t = stats.telemetry.as_ref().expect("tracing was configured");
                prop_assert_eq!(t.dropped, 0, "auto capacity must fit the run");
                check_well_nested(t, n_blocks);
                // Completed runs record the exact event counts (stride 1).
                let expect = n_blocks * rounds;
                for kind in [
                    TraceEventKind::RoundStart,
                    TraceEventKind::RoundEnd,
                    TraceEventKind::BarrierArrive,
                    TraceEventKind::BarrierDepart,
                ] {
                    prop_assert_eq!(
                        t.count(kind), expect,
                        "{} {:?} events for {} blocks x {} rounds",
                        method, kind, n_blocks, rounds
                    );
                }
            }
        }
    }
}

#[test]
fn nosync_records_rounds_but_no_barrier_events() {
    if !EventRecorder::ENABLED {
        return;
    }
    let cfg = GridConfig::new(3, 8).with_trace(TraceConfig::new());
    let k = StampKernel::new(3, 10);
    let stats = GridExecutor::new(cfg, SyncMethod::NoSync).run(&k).unwrap();
    let t = stats.telemetry.as_ref().unwrap();
    assert_eq!(t.count(TraceEventKind::RoundStart), 30);
    assert_eq!(t.count(TraceEventKind::RoundEnd), 30);
    assert_eq!(t.count(TraceEventKind::BarrierArrive), 0);
    assert_eq!(t.count(TraceEventKind::BarrierDepart), 0);
}

/// Acceptance bar for the timeline export: the per-round sync spans the
/// Chrome trace draws must sum to the `KernelStats` aggregate sync time
/// within 10% (plus a small absolute epsilon for sub-microsecond methods),
/// for every method.
#[test]
fn timeline_sync_spans_match_kernel_stats() {
    if !EventRecorder::ENABLED {
        return;
    }
    for method in [
        SyncMethod::CpuExplicit,
        SyncMethod::CpuImplicit,
        SyncMethod::GpuSimple,
        SyncMethod::GpuTree(TreeLevels::Two),
        SyncMethod::GpuTree(TreeLevels::Three),
        SyncMethod::GpuLockFree,
        SyncMethod::SenseReversing,
        SyncMethod::Dissemination,
        SyncMethod::NoSync,
    ] {
        let (stats, ok) =
            run_host_traced(3, 8, 300, method, TraceConfig::new()).expect("valid config");
        assert!(ok, "{method}: verification failed");
        let t = stats.telemetry.as_ref().expect("tracing was configured");
        let spans = t.sync_span_total().as_secs_f64();
        let stat: f64 = stats.per_block.iter().map(|b| b.sync.as_secs_f64()).sum();
        let tolerance = 0.10 * stat.max(spans) + 500e-6;
        assert!(
            (spans - stat).abs() <= tolerance,
            "{method}: timeline {spans:.6}s vs stats {stat:.6}s (tolerance {tolerance:.6}s)"
        );
    }
}

/// The recorder samples the spin histogram exactly once per completed
/// GPU-barrier wait — the no-RMW hot path defers counting to wait exit.
#[test]
fn spin_histogram_samples_once_per_wait() {
    if !EventRecorder::ENABLED {
        return;
    }
    for method in SyncMethod::GPU_METHODS {
        let (stats, ok) =
            run_host_traced(3, 8, 50, method, TraceConfig::new()).expect("valid config");
        assert!(ok);
        let t = stats.telemetry.as_ref().unwrap();
        // Tree barriers may wait on several internal flags per round, but
        // never fewer than one sample per block per round, and each
        // completed wait contributes exactly one sample.
        assert!(
            t.spin_polls.count() >= (3 * 50) as u64,
            "{method}: {} spin samples",
            t.spin_polls.count()
        );
        assert_eq!(
            t.sync_ns.count(),
            (3 * 50) as u64,
            "{method}: one sync sample per block per round"
        );
    }
}
