//! Property-based tests of the inter-block barriers on real threads.
//!
//! Two invariant families:
//!
//! 1. **Barrier semantics with publication** — after block `b` returns from
//!    its round-`r` wait, it must observe every other block's round-`r`
//!    write, and no block may be more than one round ahead. Violations
//!    (lost rounds, early release, missing Acquire/Release edges) fail the
//!    embedded assertions.
//! 2. **Failure semantics** — a fault injected at a random (block, round)
//!    via [`FaultPlan`] must surface as a structured [`ExecError`] naming
//!    exactly that site, within the policy timeout, for *every*
//!    [`SyncMethod`]; and fault-free runs must produce bit-identical
//!    results whether or not a `SyncPolicy` is configured (the
//!    fault-tolerance plane must not perturb results).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blocksync::core::{
    stall_duration, BarrierShared, BlockCtx, ExecError, Fault, FaultInjector, FaultKind,
    FaultPhase, FaultPlan, FaultSchedule, GlobalBuffer, GridConfig, GridExecutor, RoundKernel,
    SpinStrategy, SyncMethod, SyncPolicy, TreeLevels,
};
use proptest::prelude::*;

fn method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        Just(SyncMethod::GpuSimple),
        Just(SyncMethod::GpuTree(TreeLevels::Two)),
        Just(SyncMethod::GpuTree(TreeLevels::Three)),
        Just(SyncMethod::GpuLockFree),
        Just(SyncMethod::SenseReversing),
        Just(SyncMethod::Dissemination),
    ]
}

/// All methods the executor can run with inter-block ordering guarantees
/// (everything except `NoSync`), including both CPU modes.
fn exec_method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        Just(SyncMethod::CpuExplicit),
        Just(SyncMethod::CpuImplicit),
        Just(SyncMethod::GpuSimple),
        Just(SyncMethod::GpuTree(TreeLevels::Two)),
        Just(SyncMethod::GpuTree(TreeLevels::Three)),
        Just(SyncMethod::GpuLockFree),
        Just(SyncMethod::SenseReversing),
        Just(SyncMethod::Dissemination),
    ]
}

/// Counter-phase barrier exerciser (same invariant as the in-crate
/// harness, re-stated here against the public API).
fn exercise(shared: Arc<dyn BarrierShared>, n_blocks: usize, rounds: usize) {
    let counters: Arc<Vec<AtomicU64>> =
        Arc::new((0..n_blocks).map(|_| AtomicU64::new(0)).collect());
    std::thread::scope(|s| {
        for b in 0..n_blocks {
            let shared = Arc::clone(&shared);
            let counters = Arc::clone(&counters);
            s.spawn(move || {
                let mut w = shared.waiter(b);
                for r in 0..rounds as u64 {
                    counters[b].store(r + 1, Ordering::Relaxed);
                    w.wait().expect("fault-free barrier must not fail");
                    for (other, c) in counters.iter().enumerate() {
                        let seen = c.load(Ordering::Relaxed);
                        assert!(
                            seen > r && seen <= r + 2,
                            "block {b} round {r}: block {other} at {seen}"
                        );
                    }
                }
            });
        }
    });
}

proptest! {
    // Thread-heavy cases: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn barriers_are_correct_for_any_shape(
        method in method_strategy(),
        n_blocks in 1usize..9,
        rounds in 1usize..120,
    ) {
        let shared = method.build_barrier(n_blocks).expect("gpu-side method");
        prop_assert_eq!(shared.num_blocks(), n_blocks);
        exercise(shared, n_blocks, rounds);
    }

    #[test]
    fn unpadded_lockfree_is_equally_correct(
        n_blocks in 1usize..9,
        rounds in 1usize..120,
    ) {
        let shared: Arc<dyn BarrierShared> =
            Arc::new(blocksync::core::GpuLockFreeSync::new_unpadded(n_blocks));
        exercise(shared, n_blocks, rounds);
    }

    #[test]
    fn reset_counter_strategy_is_equally_correct(
        n_blocks in 1usize..9,
        rounds in 1usize..120,
    ) {
        let shared: Arc<dyn BarrierShared> = Arc::new(
            blocksync::core::GpuSimpleSync::with_strategy(
                n_blocks,
                blocksync::core::ResetStrategy::ResetCounter,
            ),
        );
        exercise(shared, n_blocks, rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Data written before a barrier is visible after it — checked with a
    /// rotating-writer pattern: in round r, block (r mod n) writes a token;
    /// in round r+1 every block must read it.
    #[test]
    fn publication_across_rounds(
        method in method_strategy(),
        n_blocks in 2usize..7,
        rounds in 2usize..60,
    ) {
        let shared = method.build_barrier(n_blocks).expect("gpu-side method");
        let slot = Arc::new(AtomicU64::new(u64::MAX));
        std::thread::scope(|s| {
            for b in 0..n_blocks {
                let shared = Arc::clone(&shared);
                let slot = Arc::clone(&slot);
                s.spawn(move || {
                    let mut w = shared.waiter(b);
                    for r in 0..rounds as u64 {
                        if r as usize % n_blocks == b {
                            slot.store(r * 1000 + b as u64, Ordering::Relaxed);
                        }
                        w.wait().expect("fault-free barrier must not fail");
                        let v = slot.load(Ordering::Relaxed);
                        let writer = r as usize % n_blocks;
                        assert_eq!(
                            v,
                            r * 1000 + writer as u64,
                            "block {b} after round {r} saw stale token"
                        );
                        // Second barrier so reads finish before the next write.
                        w.wait().expect("fault-free barrier must not fail");
                    }
                });
            }
        });
    }
}

/// Deterministic all-to-all kernel: logical step `t` runs as two barrier
/// rounds — phase A reads every slot and stages a mixed update, phase B
/// publishes it — so every block's result depends on every other block's
/// previous step and the outcome is a pure function of (n_blocks, steps).
struct MixKernel {
    slots: GlobalBuffer<u64>,
    scratch: GlobalBuffer<u64>,
    rounds: usize,
}

impl MixKernel {
    fn new(n_blocks: usize, steps: usize) -> Self {
        let init: Vec<u64> = (0..n_blocks).map(|b| b as u64 + 1).collect();
        MixKernel {
            slots: GlobalBuffer::from_slice(&init),
            scratch: GlobalBuffer::new(n_blocks),
            rounds: steps * 2,
        }
    }
}

impl RoundKernel for MixKernel {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, round: usize) {
        let b = ctx.block_id;
        if round.is_multiple_of(2) {
            let mut acc = 0u64;
            for i in 0..ctx.n_blocks {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(self.slots.get(i));
            }
            self.scratch.set(b, acc.wrapping_add(b as u64));
        } else {
            self.slots.set(b, self.scratch.get(b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A panic injected at any (block, round) must surface as
    /// `ExecError::BlockPanicked` naming exactly that site, for every
    /// method including both CPU modes — detected well within the policy
    /// timeout, never by hanging the test.
    #[test]
    fn injected_panic_is_detected_for_every_method(
        method in exec_method_strategy(),
        block in 0usize..4,
        step in 0usize..5,
    ) {
        let timeout = Duration::from_secs(20);
        let k = FaultInjector::new(MixKernel::new(4, 5), FaultPlan::panic_at(block, step));
        let cfg = GridConfig::new(4, 8).with_policy(SyncPolicy::with_timeout(timeout));
        let started = Instant::now();
        let err = GridExecutor::new(cfg, method).run(&k).unwrap_err();
        prop_assert!(started.elapsed() < timeout, "detection exceeded the policy timeout");
        match err {
            ExecError::BlockPanicked { block: eb, round: er, message } => {
                prop_assert_eq!((eb, er), (block, step));
                prop_assert!(message.contains("injected fault"), "{}", message);
            }
            other => panic!("{method}: expected BlockPanicked, got {other:?}"),
        }
    }

    /// The fault-tolerance plane must be invisible to healthy runs: the
    /// same kernel produces bit-identical output with the default policy
    /// (no timeout, legacy spin loop) and with any explicit policy.
    #[test]
    fn fault_free_runs_are_bit_identical_under_any_policy(
        method in exec_method_strategy(),
        n_blocks in 1usize..6,
        steps in 1usize..30,
        spin in prop_oneof![
            Just(SpinStrategy::Spin),
            Just(SpinStrategy::Yield),
            Just(SpinStrategy::Backoff),
        ],
    ) {
        let run = |policy: SyncPolicy| {
            let k = MixKernel::new(n_blocks, steps);
            GridExecutor::new(GridConfig::new(n_blocks, 8).with_policy(policy), method)
                .run(&k)
                .expect("fault-free run must succeed");
            k.slots.to_vec()
        };
        let baseline = run(SyncPolicy::default());
        let guarded = run(SyncPolicy::with_timeout(Duration::from_secs(30)).with_spin(spin));
        prop_assert_eq!(baseline, guarded);
    }

    /// Poison-cause coverage, one property: every sync method × every
    /// [`FaultKind`] at a random (block, round, phase) site must surface
    /// as the *expected* `ExecError` variant carrying the correct block
    /// and round — panics as `BlockPanicked`, stragglers and stalls as
    /// `BarrierTimeout` naming the site, and sub-timeout delays absorbed
    /// with bit-identical results.
    #[test]
    fn every_fault_kind_surfaces_as_the_expected_error(
        method in exec_method_strategy(),
        kind_sel in 0usize..4,
        in_wait in any::<bool>(),
        block in 0usize..4,
        round in 0usize..5,
    ) {
        let timeout = Duration::from_millis(100);
        let kind = match kind_sel {
            0 => FaultKind::Panic,
            1 => FaultKind::Straggler,
            2 => FaultKind::Delay(Duration::from_millis(15)),
            _ => FaultKind::Stall(stall_duration(timeout)),
        };
        // CPU-explicit relaunches per round and has no poisonable barrier
        // object, so barrier-wait injection sites do not exist for it.
        let phase = if in_wait && method != SyncMethod::CpuExplicit {
            FaultPhase::BarrierWait
        } else {
            FaultPhase::RoundBody
        };
        let fault = Fault { block, round, phase, kind };
        let k = FaultInjector::with_schedule(
            MixKernel::new(4, 5),
            FaultSchedule::new(vec![fault]),
        );
        let cfg = GridConfig::new(4, 8).with_policy(SyncPolicy::with_timeout(timeout));
        let started = Instant::now();
        let res = GridExecutor::new(cfg, method).run(&k);
        prop_assert!(
            started.elapsed() < Duration::from_secs(10),
            "{method}/{kind:?}/{phase:?}: detection too slow"
        );
        match (kind, res) {
            (FaultKind::Panic, Err(ExecError::BlockPanicked { block: eb, round: er, .. })) => {
                prop_assert_eq!((eb, er), (block, round), "{}/{:?}", method, phase);
            }
            (FaultKind::Straggler | FaultKind::Stall(_), Err(ExecError::BarrierTimeout { diagnostic })) => {
                prop_assert_eq!(diagnostic.round, round, "{}/{:?}: {}", method, phase, diagnostic);
                prop_assert!(
                    diagnostic.stragglers().contains(&block) || diagnostic.waiting_block == block,
                    "{}/{:?}: straggler unnamed: {}", method, phase, diagnostic
                );
            }
            (FaultKind::Delay(_), Ok(_)) => {
                let clean = MixKernel::new(4, 5);
                GridExecutor::new(GridConfig::new(4, 8), method)
                    .run(&clean)
                    .expect("clean reference run");
                prop_assert_eq!(
                    k.inner().slots.to_vec(),
                    clean.slots.to_vec(),
                    "{}/{:?}: delayed run diverged", method, phase
                );
            }
            (kind, other) => {
                panic!("{method}/{kind:?}/{phase:?}: unexpected outcome {other:?}");
            }
        }
    }
}
