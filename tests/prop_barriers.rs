//! Property-based tests of the inter-block barriers on real threads.
//!
//! The invariant under test is full barrier semantics with publication:
//! after block `b` returns from its round-`r` wait, it must observe every
//! other block's round-`r` write, and no block may be more than one round
//! ahead. Violations (lost rounds, early release, missing Acquire/Release
//! edges) fail the embedded assertions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blocksync::core::{BarrierShared, SyncMethod, TreeLevels};
use proptest::prelude::*;

fn method_strategy() -> impl Strategy<Value = SyncMethod> {
    prop_oneof![
        Just(SyncMethod::GpuSimple),
        Just(SyncMethod::GpuTree(TreeLevels::Two)),
        Just(SyncMethod::GpuTree(TreeLevels::Three)),
        Just(SyncMethod::GpuLockFree),
        Just(SyncMethod::SenseReversing),
        Just(SyncMethod::Dissemination),
    ]
}

/// Counter-phase barrier exerciser (same invariant as the in-crate
/// harness, re-stated here against the public API).
fn exercise(shared: Arc<dyn BarrierShared>, n_blocks: usize, rounds: usize) {
    let counters: Arc<Vec<AtomicU64>> =
        Arc::new((0..n_blocks).map(|_| AtomicU64::new(0)).collect());
    std::thread::scope(|s| {
        for b in 0..n_blocks {
            let shared = Arc::clone(&shared);
            let counters = Arc::clone(&counters);
            s.spawn(move || {
                let mut w = shared.waiter(b);
                for r in 0..rounds as u64 {
                    counters[b].store(r + 1, Ordering::Relaxed);
                    w.wait();
                    for (other, c) in counters.iter().enumerate() {
                        let seen = c.load(Ordering::Relaxed);
                        assert!(
                            seen > r && seen <= r + 2,
                            "block {b} round {r}: block {other} at {seen}"
                        );
                    }
                }
            });
        }
    });
}

proptest! {
    // Thread-heavy cases: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn barriers_are_correct_for_any_shape(
        method in method_strategy(),
        n_blocks in 1usize..9,
        rounds in 1usize..120,
    ) {
        let shared = method.build_barrier(n_blocks).expect("gpu-side method");
        prop_assert_eq!(shared.num_blocks(), n_blocks);
        exercise(shared, n_blocks, rounds);
    }

    #[test]
    fn unpadded_lockfree_is_equally_correct(
        n_blocks in 1usize..9,
        rounds in 1usize..120,
    ) {
        let shared: Arc<dyn BarrierShared> =
            Arc::new(blocksync::core::GpuLockFreeSync::new_unpadded(n_blocks));
        exercise(shared, n_blocks, rounds);
    }

    #[test]
    fn reset_counter_strategy_is_equally_correct(
        n_blocks in 1usize..9,
        rounds in 1usize..120,
    ) {
        let shared: Arc<dyn BarrierShared> = Arc::new(
            blocksync::core::GpuSimpleSync::with_strategy(
                n_blocks,
                blocksync::core::ResetStrategy::ResetCounter,
            ),
        );
        exercise(shared, n_blocks, rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Data written before a barrier is visible after it — checked with a
    /// rotating-writer pattern: in round r, block (r mod n) writes a token;
    /// in round r+1 every block must read it.
    #[test]
    fn publication_across_rounds(
        method in method_strategy(),
        n_blocks in 2usize..7,
        rounds in 2usize..60,
    ) {
        let shared = method.build_barrier(n_blocks).expect("gpu-side method");
        let slot = Arc::new(AtomicU64::new(u64::MAX));
        std::thread::scope(|s| {
            for b in 0..n_blocks {
                let shared = Arc::clone(&shared);
                let slot = Arc::clone(&slot);
                s.spawn(move || {
                    let mut w = shared.waiter(b);
                    for r in 0..rounds as u64 {
                        if r as usize % n_blocks == b {
                            slot.store(r * 1000 + b as u64, Ordering::Relaxed);
                        }
                        w.wait();
                        let v = slot.load(Ordering::Relaxed);
                        let writer = r as usize % n_blocks;
                        assert_eq!(
                            v,
                            r * 1000 + writer as u64,
                            "block {b} after round {r} saw stale token"
                        );
                        w.wait(); // second barrier so reads finish before the next write
                    }
                });
            }
        });
    }
}
