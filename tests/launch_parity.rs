//! Cross-path parity: the scoped and pooled strategies are two front-ends
//! to the same launch engine (`core::launch`), so for every method the
//! pooled runtime supports, running one kernel scoped and one pooled must
//! produce **bit-identical results** and **structurally equal stats** —
//! same round count, same method string, same telemetry shape (event and
//! sample counts). The only permitted difference is the pool bookkeeping
//! itself ([`KernelStats::pool`]).

use blocksync::core::{
    BlockCtx, GlobalBuffer, GridConfig, GridExecutor, KernelStats, RoundKernel, RuntimeKind,
    SyncMethod, TraceConfig, TraceEventKind, TreeLevels,
};
use proptest::prelude::*;

/// Every pool-eligible method. `CpuExplicit` and `Auto` are excluded by
/// construction (`GridRuntime::supports` rejects them); `NoSync` is
/// excluded because without a barrier the stencil below is racy.
const PARITY_METHODS: [SyncMethod; 7] = [
    SyncMethod::GpuSimple,
    SyncMethod::GpuTree(TreeLevels::Two),
    SyncMethod::GpuTree(TreeLevels::Three),
    SyncMethod::GpuLockFree,
    SyncMethod::SenseReversing,
    SyncMethod::Dissemination,
    SyncMethod::CpuImplicit,
];

/// A ring stencil over two generations: each round, every block reads its
/// neighbours' previous-generation values and mixes them into its own slot
/// of the next generation. The result is deterministic **only** if the
/// inter-block barrier actually separates generations, so bit-identical
/// outputs across paths certify both strategies drive the same barrier.
struct RingStencil {
    gen: [GlobalBuffer<u64>; 2],
    n: usize,
    rounds: usize,
}

impl RingStencil {
    fn new(n: usize, rounds: usize) -> Self {
        let a = GlobalBuffer::new(n);
        for b in 0..n {
            a.set(b, b as u64 + 1);
        }
        RingStencil {
            gen: [a, GlobalBuffer::new(n)],
            n,
            rounds,
        }
    }

    fn output(&self) -> Vec<u64> {
        self.gen[self.rounds % 2].to_vec()
    }
}

impl RoundKernel for RingStencil {
    fn rounds(&self) -> usize {
        self.rounds
    }
    fn round(&self, ctx: &BlockCtx, round: usize) {
        let (cur, next) = (&self.gen[round % 2], &self.gen[(round + 1) % 2]);
        let b = ctx.block_id;
        let left = cur.get((b + self.n - 1) % self.n);
        let right = cur.get((b + 1) % self.n);
        next.set(
            b,
            cur.get(b)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(left ^ right.rotate_left(17)),
        );
    }
}

fn run_one(
    method: SyncMethod,
    runtime: RuntimeKind,
    blocks: usize,
    rounds: usize,
) -> (Vec<u64>, KernelStats) {
    let cfg = GridConfig::new(blocks, 8)
        .with_runtime(runtime)
        .with_trace(TraceConfig::new());
    let k = RingStencil::new(blocks, rounds);
    let stats = GridExecutor::new(cfg, method).run(&k).unwrap();
    (k.output(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every supported method and any small grid, scoped and pooled
    /// runs agree bit-for-bit and stat-for-stat.
    #[test]
    fn scoped_and_pooled_paths_agree(
        blocks in 2usize..=5,
        rounds in 1usize..=6,
        mi in 0usize..PARITY_METHODS.len(),
    ) {
        let method = PARITY_METHODS[mi];
        let (scoped_out, scoped) = run_one(method, RuntimeKind::Scoped, blocks, rounds);
        let (pooled_out, pooled) = run_one(method, RuntimeKind::Pooled, blocks, rounds);

        // Bit-identical results.
        prop_assert_eq!(&scoped_out, &pooled_out, "{method}: outputs diverge");

        // Structurally equal stats: one engine, two strategies.
        prop_assert_eq!(&scoped.method, &pooled.method);
        prop_assert_eq!(&scoped.method, &method.to_string());
        prop_assert_eq!(scoped.rounds, rounds);
        prop_assert_eq!(pooled.rounds, rounds);
        prop_assert_eq!(scoped.n_blocks, pooled.n_blocks);
        prop_assert_eq!(scoped.per_block.len(), pooled.per_block.len());

        // Telemetry shape parity: both paths run the same drive_block, so
        // both record the same event and sample counts.
        let (st, pt) = (
            scoped.telemetry.as_ref().expect("scoped telemetry"),
            pooled.telemetry.as_ref().expect("pooled telemetry"),
        );
        let expected_sync = (blocks * rounds) as u64;
        // The pooled path adds exactly one `Launch` assembly event per
        // block; every round-loop event comes from the shared drive_block.
        let round_events = |t: &blocksync::core::Telemetry| {
            t.events
                .iter()
                .filter(|e| !matches!(e.kind, TraceEventKind::Launch))
                .count()
        };
        prop_assert_eq!(round_events(st), round_events(pt), "{method}: event counts");
        let launches = pt
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Launch))
            .count();
        prop_assert_eq!(launches, blocks, "{method}: one Launch event per block");
        prop_assert_eq!(st.sync_ns.count(), expected_sync);
        prop_assert_eq!(pt.sync_ns.count(), expected_sync);
        prop_assert_eq!(st.rounds.len(), pt.rounds.len(), "{method}: sampled rounds");
        prop_assert_eq!(st.dropped, 0);
        prop_assert_eq!(pt.dropped, 0);

        // The one permitted difference: pool bookkeeping.
        prop_assert!(scoped.pool.is_none());
        let pool = pooled.pool.as_deref().expect("pooled stats");
        prop_assert!(pool.ran_pooled(), "{method}: fell back: {:?}", pool.fallback);
    }
}

/// Deterministic full sweep at a fixed shape, so every method is exercised
/// on every test run regardless of proptest's case sampling.
#[test]
fn parity_sweep_all_methods() {
    for method in PARITY_METHODS {
        let (s_out, s) = run_one(method, RuntimeKind::Scoped, 4, 5);
        let (p_out, p) = run_one(method, RuntimeKind::Pooled, 4, 5);
        assert_eq!(s_out, p_out, "{method}");
        assert_eq!(s.method, p.method, "{method}");
        assert_eq!(s.rounds, p.rounds, "{method}");
        assert!(p.pool.as_deref().unwrap().ran_pooled(), "{method}");
    }
}
