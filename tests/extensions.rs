//! Integration tests for the beyond-the-paper extensions: every extension
//! kernel runs end-to-end on the host runtime under several barriers and
//! agrees with an independent reference.

use blocksync::algos::bitonic::{GridBitonicBatched, GridBitonicKv};
use blocksync::algos::fft::{fft2d::GridFft2d, kernel::Direction, reference::max_error};
use blocksync::algos::scan::{inclusive_scan_reference, GridScan};
use blocksync::algos::seqgen::{
    complex_signal, dna_sequence, random_keys, related_dna, SplitMix64,
};
use blocksync::algos::swat::{
    needleman_wunsch, smith_waterman, GapPenalties, GridNw, GridSwatBanded, Scoring,
};
use blocksync::core::{GridConfig, GridExecutor, RoundKernel, SyncMethod};

const METHODS: [SyncMethod; 4] = [
    SyncMethod::CpuImplicit,
    SyncMethod::GpuSimple,
    SyncMethod::GpuLockFree,
    SyncMethod::Dissemination,
];

fn execute<K: RoundKernel>(kernel: &K, n_blocks: usize, method: SyncMethod) {
    GridExecutor::new(GridConfig::new(n_blocks, 32), method)
        .run(kernel)
        .expect("valid configuration");
}

#[test]
fn scan_matches_reference_under_every_method() {
    let mut rng = SplitMix64::new(123);
    let data: Vec<u64> = (0..777).map(|_| rng.next_u64() >> 40).collect();
    let expected = inclusive_scan_reference(&data);
    for method in METHODS {
        let k = GridScan::new(&data);
        execute(&k, 5, method);
        assert_eq!(k.output(), expected, "{method}");
    }
}

#[test]
fn fft2d_matches_row_column_reference() {
    let (rows, cols) = (16, 32);
    let input = complex_signal(rows * cols, 9);
    // Reference: 1-D FFT on rows, then on columns.
    let mut expected = input.clone();
    for r in 0..rows {
        blocksync::algos::fft::fft_inplace(&mut expected[r * cols..(r + 1) * cols]);
    }
    let mut cols_out = expected.clone();
    for c in 0..cols {
        let mut col: Vec<_> = (0..rows).map(|r| expected[r * cols + c]).collect();
        blocksync::algos::fft::fft_inplace(&mut col);
        for (r, v) in col.into_iter().enumerate() {
            cols_out[r * cols + c] = v;
        }
    }
    for method in METHODS {
        let k = GridFft2d::new(&input, rows, cols, Direction::Forward);
        execute(&k, 6, method);
        let err = max_error(&k.output(), &cols_out);
        assert!(err < 0.5, "{method}: err {err}"); // f32 over 512 points
    }
}

#[test]
fn key_value_sort_preserves_pairing() {
    let keys = random_keys(2048, 5);
    let values: Vec<u64> = keys.iter().map(|&k| u64::from(!k)).collect();
    for method in METHODS {
        let k = GridBitonicKv::new(&keys, &values);
        execute(&k, 4, method);
        let (sk, sv) = (k.keys(), k.values());
        assert!(sk.windows(2).all(|w| w[0] <= w[1]), "{method}");
        assert!(
            sk.iter().zip(&sv).all(|(&key, &v)| v == u64::from(!key)),
            "{method}"
        );
    }
}

#[test]
fn batched_sort_isolates_segments() {
    let keys = random_keys(4 * 512, 6);
    let k = GridBitonicBatched::new(&keys, 4);
    execute(&k, 6, SyncMethod::GpuLockFree);
    for s in 0..4 {
        let mut expected = keys[s * 512..(s + 1) * 512].to_vec();
        expected.sort_unstable();
        assert_eq!(k.segment(s), expected);
    }
}

#[test]
fn needleman_wunsch_differs_from_smith_waterman_as_expected() {
    let a = dna_sequence(100, 1);
    let b = dna_sequence(100, 2);
    let (s, g) = (Scoring::dna(), GapPenalties::dna());
    let nw_ref = needleman_wunsch(&a, &b, s, g);
    let k = GridNw::new(&a, &b, s, g);
    execute(&k, 5, SyncMethod::GpuSimple);
    assert_eq!(k.score(), nw_ref);
    // Local >= global for unrelated random sequences.
    assert!(smith_waterman(&a, &b, s, g).score >= nw_ref);
}

#[test]
fn banded_alignment_matches_full_on_similar_sequences() {
    let (a, b) = related_dna(400, 0.04, 3);
    let (s, g) = (Scoring::dna(), GapPenalties::dna());
    let full = smith_waterman(&a, &b, s, g);
    for method in METHODS {
        let k = GridSwatBanded::new(&a, &b, 16, s, g, 4);
        execute(&k, 4, method);
        assert_eq!(k.result().score, full.score, "{method}");
    }
}

#[test]
fn extension_kernels_respect_the_sm_limit_too() {
    let k = GridScan::new(&[1, 2, 3]);
    assert!(
        GridExecutor::new(GridConfig::new(31, 32), SyncMethod::Dissemination)
            .run(&k)
            .is_err()
    );
}
